//! Summary statistics for repeated benchmark runs.
//!
//! The paper measures each point 10 times and reports a coefficient of
//! variation below 0.01; [`Stats`] reproduces that bookkeeping.

/// Mean / standard deviation / coefficient of variation of a sample set.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub stddev: f64,
    /// Coefficient of variation `stddev / mean` (0 when mean is 0).
    pub cov: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes statistics over `samples`.
    pub fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        if n == 0 {
            return Stats {
                mean: 0.0,
                stddev: 0.0,
                cov: 0.0,
                n,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let cov = if mean.abs() > f64::EPSILON {
            stddev / mean
        } else {
            0.0
        };
        Stats {
            mean,
            stddev,
            cov,
            n,
        }
    }
}

/// Formats a byte count like the paper's memory axis (MB).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Latency distribution summary (nanosecond samples) for the wakeup-latency
/// measurements of the blocking facade: unlike throughput, wakeup latency is
/// long-tailed (a parked consumer pays the scheduler), so the tail
/// percentiles carry the signal the mean hides.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Summarizes `samples` (consumed: sorted in place).
    pub fn from_ns_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |p: f64| samples[((n - 1) as f64 * p) as usize];
        LatencyStats {
            n,
            mean_ns: samples.iter().map(|&s| s as f64).sum::<f64>() / n as f64,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            max_ns: samples[n - 1],
        }
    }
}

/// Bounded uniform sampler (Vitter's algorithm R) for latency streams too
/// long to keep whole: a soak run records millions of flush latencies, and
/// an unbounded `Vec` would both skew the run it is measuring (allocator
/// traffic) and bias the percentiles toward whatever phase filled memory
/// first. The reservoir keeps a fixed-size uniform sample instead.
///
/// The RNG is a seeded xorshift, not an entropy source — every run with
/// the same input stream keeps the same sample, which the deterministic
/// soak smoke in CI relies on.
#[derive(Clone, Debug)]
pub struct Reservoir {
    samples: Vec<u64>,
    cap: usize,
    seen: u64,
    rng: u64,
}

impl Reservoir {
    /// A reservoir keeping at most `cap` samples (`cap >= 1`).
    pub fn new(cap: usize) -> Reservoir {
        Reservoir {
            samples: Vec::with_capacity(cap.min(1 << 20)),
            cap: cap.max(1),
            seen: 0,
            rng: 0x9e37_79b9_7f4a_7c15 ^ (cap as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: plenty for sampling, zero dependencies.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Offers one observation to the sample.
    pub fn push(&mut self, v: u64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(v);
        } else {
            // Algorithm R: keep v with probability cap/seen, evicting a
            // uniformly chosen resident; the modulo bias is far below the
            // sampling noise at any plausible cap.
            let j = self.next_rand() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = v;
            }
        }
    }

    /// Total observations offered (kept or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained sample, unordered.
    pub fn into_samples(self) -> Vec<u64> {
        self.samples
    }

    /// Summarizes the retained sample.
    pub fn into_stats(self) -> LatencyStats {
        LatencyStats::from_ns_samples(self.samples)
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`/`µs`/`ms`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let s = Stats::from_samples(&[]);
        assert_eq!(s.n, 0);
        let s = Stats::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cov, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((s.stddev - 2.1380899).abs() < 1e-6);
        assert!((s.cov - 2.1380899 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn cov_of_identical_samples_is_zero() {
        let s = Stats::from_samples(&[3.0; 10]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.cov, 0.0);
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
        assert_eq!(fmt_mb(1536 * 1024), "1.50");
    }

    #[test]
    fn latency_percentiles() {
        let s = LatencyStats::from_ns_samples((1..=100).collect());
        assert_eq!(s.n, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        let empty = LatencyStats::from_ns_samples(Vec::new());
        assert_eq!(empty.n, 0);
        assert_eq!(empty.max_ns, 0);
    }

    #[test]
    fn reservoir_keeps_everything_under_cap() {
        let mut r = Reservoir::new(100);
        for v in 0..50u64 {
            r.push(v);
        }
        assert_eq!(r.seen(), 50);
        let mut s = r.into_samples();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_sample_is_bounded_and_roughly_uniform() {
        let mut r = Reservoir::new(1_000);
        for v in 0..100_000u64 {
            r.push(v);
        }
        let s = r.into_samples();
        assert_eq!(s.len(), 1_000);
        // A uniform sample's mean sits near the stream mean (~50k); a
        // sampler biased toward either end would miss by a wide margin.
        let mean = s.iter().sum::<u64>() as f64 / s.len() as f64;
        assert!((35_000.0..65_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(64);
            (0..10_000u64).for_each(|v| r.push(v));
            r.into_samples()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ns_formatting_units() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.5µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
    }
}
