//! Burst workload for the blocking facade: parked vs spinning consumers.
//!
//! The paper's workloads (see [`crate::workload`]) keep every thread
//! saturated — the regime where spinning is optimal and parking can only
//! lose. Real consumers sit behind *bursty* producers: items arrive in
//! clumps with idle gaps between them, and during a gap a spinning consumer
//! burns CPU that an oversubscribed host needed elsewhere. This driver
//! reproduces that shape and measures what the throughput workloads cannot:
//!
//! * **Wakeup latency** — nanoseconds from an element's enqueue to its
//!   dequeue (each value *is* its enqueue timestamp), summarized as
//!   [`LatencyStats`] because the parking cost lives in the tail;
//! * **CPU time** — process CPU (utime + stime from `/proc/self/stat`)
//!   consumed over the run, the quantity parked consumers save.
//!
//! The `figure_wakeup` binary sweeps this driver over consumer mode ×
//! oversubscription; `tests/blocking_facade.rs` reuses the same shape as a
//! lost-wakeup stress.

use crate::stats::LatencyStats;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};
use wcq::sync::{RecvError, SyncQueue};
use wcq::{WcqConfig, WcqQueue};

/// How consumers behave while the queue is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsumerMode {
    /// Poll `dequeue` in a spin loop (the pre-facade behaviour).
    Spin,
    /// Park on the queue's eventcount via `dequeue_blocking`.
    Block,
}

/// Burst-workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct BurstCfg {
    /// Producer thread count.
    pub producers: usize,
    /// Consumer thread count.
    pub consumers: usize,
    /// Bursts per producer.
    pub bursts: u64,
    /// Items per burst.
    pub burst_len: u64,
    /// Idle gap between a producer's bursts (what consumers wait through).
    pub gap: Duration,
    /// Queue capacity `2^ring_order`.
    pub ring_order: u32,
    /// Consumer behaviour on empty.
    pub mode: ConsumerMode,
    /// Pin workers round-robin (no-op off Linux).
    pub pin: bool,
}

impl Default for BurstCfg {
    fn default() -> Self {
        BurstCfg {
            producers: 2,
            consumers: 2,
            bursts: 64,
            burst_len: 64,
            gap: Duration::from_micros(200),
            ring_order: 12,
            mode: ConsumerMode::Block,
            pin: false,
        }
    }
}

impl BurstCfg {
    /// The canonical "figure W" shape used by `figure_wakeup` and the
    /// `all_figures` smoke point: 64-item bursts with a 500 µs gap on a
    /// 2^12-slot queue, `workers` split evenly between the roles, and
    /// `ops` items per producer rounded **up** to a whole burst. One
    /// definition so the two binaries cannot drift apart.
    pub fn figure_shape(mode: ConsumerMode, workers: usize, ops: u64, pin: bool) -> BurstCfg {
        let producers = (workers / 2).max(1);
        BurstCfg {
            producers,
            consumers: (workers - producers).max(1),
            bursts: ops.div_ceil(64).max(1),
            burst_len: 64,
            gap: Duration::from_micros(500),
            ring_order: 12,
            mode,
            pin,
        }
    }
}

/// Result of one burst-workload run.
#[derive(Clone, Copy, Debug)]
pub struct BurstResult {
    /// Items delivered (must equal `producers × bursts × burst_len`).
    pub moved: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Enqueue→dequeue latency distribution.
    pub wakeup: LatencyStats,
    /// Process CPU time consumed during the run (0 where unsupported).
    pub cpu: Duration,
}

impl BurstResult {
    /// Items per second over the wall clock.
    pub fn items_per_sec(&self) -> f64 {
        self.moved as f64 / self.elapsed.as_secs_f64()
    }
}

/// Process CPU time (user + system) so far; `None` where unsupported.
///
/// Reads `/proc/self/stat` on Linux — fields 14/15 (`utime`/`stime`) in
/// `_SC_CLK_TCK` ticks, parsed after the last `)` so executable names with
/// spaces cannot shift the fields.
pub fn process_cpu_time() -> Option<Duration> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let rest = &stat[stat.rfind(')')? + 1..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // `rest` starts at field 3 (state); utime/stime are fields 14/15.
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        // SAFETY: `sysconf` takes no pointers; invalid names return -1.
        let tck = unsafe { libc::sysconf(libc::_SC_CLK_TCK) };
        if tck <= 0 {
            return None;
        }
        Some(Duration::from_secs_f64((utime + stime) as f64 / tck as f64))
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Runs one burst workload and returns its measurements.
///
/// Values circulating through the queue are enqueue timestamps (nanoseconds
/// since the run epoch), so every dequeue yields one latency sample for
/// free. Producers use the blocking enqueue in both modes — the comparison
/// under test is the *consumer* idle strategy.
///
/// # Panics
/// Panics if any element is lost or duplicated (delivery count mismatch) —
/// the driver doubles as the facade's lost-wakeup tripwire.
pub fn run_burst(cfg: &BurstCfg) -> BurstResult {
    assert!(cfg.producers >= 1 && cfg.consumers >= 1);
    let q: WcqQueue<u64> = WcqQueue::with_config(
        cfg.ring_order,
        cfg.producers + cfg.consumers,
        &WcqConfig::default(),
    );
    let expected = cfg.producers as u64 * cfg.bursts * cfg.burst_len;
    let barrier = Barrier::new(cfg.producers + cfg.consumers + 1);
    let moved = AtomicU64::new(0);
    let samples = Mutex::new(Vec::<u64>::new());
    let epoch = Instant::now();
    let cpu_before = process_cpu_time();
    let started = Instant::now();
    std::thread::scope(|s| {
        for p in 0..cfg.producers {
            let q = &q;
            let barrier = &barrier;
            let cfg = *cfg;
            s.spawn(move || {
                if cfg.pin {
                    crate::pin::pin_to_core(p);
                }
                let mut h = q.register().expect("producer slot");
                barrier.wait();
                for burst in 0..cfg.bursts {
                    for _ in 0..cfg.burst_len {
                        let stamp = epoch.elapsed().as_nanos() as u64;
                        h.enqueue_blocking(stamp).expect("queue closed early");
                    }
                    // No trailing sleep after the final burst: it would pad
                    // every run's wall clock (and throughput) by one gap.
                    if burst + 1 < cfg.bursts && !cfg.gap.is_zero() {
                        std::thread::sleep(cfg.gap);
                    }
                }
            });
        }
        for c in 0..cfg.consumers {
            let q = &q;
            let barrier = &barrier;
            let moved = &moved;
            let samples = &samples;
            let cfg = *cfg;
            s.spawn(move || {
                if cfg.pin {
                    crate::pin::pin_to_core(cfg.producers + c);
                }
                let mut h = q.register().expect("consumer slot");
                let mut local = Vec::new();
                barrier.wait();
                // `moved` is bumped per item (not at exit): the main thread
                // closes the queue only once `moved` reaches the expected
                // total, and consumers only exit on close.
                let take = |local: &mut Vec<u64>, stamp: u64| {
                    local.push(epoch.elapsed().as_nanos() as u64 - stamp);
                    moved.fetch_add(1, Relaxed);
                };
                match cfg.mode {
                    ConsumerMode::Block => loop {
                        match h.dequeue_blocking() {
                            Ok(stamp) => take(&mut local, stamp),
                            Err(RecvError::Closed) => break,
                            Err(RecvError::Timeout) => unreachable!("no deadline"),
                        }
                    },
                    ConsumerMode::Spin => loop {
                        match h.dequeue() {
                            Some(stamp) => take(&mut local, stamp),
                            // Same drain contract as dequeue_blocking: only
                            // closed + one more empty look means done.
                            None if q.is_closed() => match h.dequeue() {
                                Some(stamp) => take(&mut local, stamp),
                                None => break,
                            },
                            None => std::hint::spin_loop(),
                        }
                    },
                }
                samples.lock().unwrap().extend(local);
            });
        }
        barrier.wait(); // start line: all workers ready
        // The scope joins producers implicitly, but consumers only exit on
        // close — so wait for full delivery, then close. The wait is
        // deadline-bounded so a lost element panics with a diagnostic
        // instead of hanging the run (the tripwire must be able to fire).
        let deadline = Instant::now()
            + cfg.gap * cfg.bursts as u32
            + Duration::from_millis(expected / 10) // ≥100 items/s floor
            + Duration::from_secs(60);
        while moved.load(Relaxed) < expected {
            if Instant::now() >= deadline {
                // Release the parked workers first or the scope's implicit
                // join would hang on them during the unwind.
                q.close();
                panic!(
                    "burst run stalled: {}/{} items delivered (lost wakeup?)",
                    moved.load(Relaxed),
                    expected
                );
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        q.close();
    });
    let elapsed = started.elapsed();
    let cpu = match (cpu_before, process_cpu_time()) {
        (Some(a), Some(b)) => b.saturating_sub(a),
        _ => Duration::ZERO,
    };
    let got = moved.load(Relaxed);
    assert_eq!(got, expected, "lost or duplicated elements in burst run");
    BurstResult {
        moved: got,
        elapsed,
        wakeup: LatencyStats::from_ns_samples(samples.into_inner().unwrap()),
        cpu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mode: ConsumerMode) -> BurstCfg {
        BurstCfg {
            producers: 2,
            consumers: 2,
            bursts: 8,
            burst_len: 16,
            gap: Duration::from_micros(50),
            ring_order: 8,
            mode,
            pin: false,
        }
    }

    #[test]
    fn burst_block_mode_delivers_exactly() {
        let r = run_burst(&tiny(ConsumerMode::Block));
        assert_eq!(r.moved, 2 * 8 * 16);
        assert_eq!(r.wakeup.n as u64, r.moved, "one sample per item");
        assert!(r.wakeup.max_ns > 0);
        assert!(r.items_per_sec() > 0.0);
    }

    #[test]
    fn burst_spin_mode_delivers_exactly() {
        let r = run_burst(&tiny(ConsumerMode::Spin));
        assert_eq!(r.moved, 2 * 8 * 16);
        assert_eq!(r.wakeup.n as u64, r.moved);
    }

    #[test]
    fn cpu_census_is_monotone_where_supported() {
        if let Some(a) = process_cpu_time() {
            // Burn a little CPU, then re-read.
            let mut x = 0u64;
            for i in 0..2_000_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(x);
            let b = process_cpu_time().unwrap();
            assert!(b >= a);
        }
    }
}
