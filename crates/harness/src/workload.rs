//! The paper's benchmark workloads (§6).
//!
//! Each driver spawns `threads` workers, synchronizes them on a barrier,
//! runs `ops_per_thread` operations per worker and reports aggregate
//! throughput. Values are tagged `(thread << 32) | seq` like the original
//! benchmark framework (which enqueues pointers).
//!
//! The memory test (Fig. 10) additionally inserts "tiny random delays
//! between Dequeue and Enqueue operations" and picks enqueue/dequeue at
//! random with probability ½ each.

use crate::pin;
use crate::queues::{BenchQueue, QueueHandle};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Which of the paper's workloads to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `Enqueue; Dequeue` in a tight loop (Figs. 11b / 12b).
    Pairwise,
    /// 50% enqueue / 50% dequeue chosen randomly (Figs. 11c / 12c).
    Mixed5050,
    /// `Dequeue` on an empty queue in a tight loop (Figs. 11a / 12a).
    EmptyDequeue,
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadCfg {
    /// Worker thread count.
    pub threads: usize,
    /// Operations per worker (an op = one enqueue or one dequeue; a
    /// pairwise iteration counts as two ops).
    pub ops_per_thread: u64,
    /// Elements enqueued before the clock starts (Mixed only).
    pub prefill: u64,
    /// Upper bound for the random inter-op delay, in `spin_loop` hints.
    /// `0` disables delays. (The paper's memory test uses tiny delays.)
    pub max_delay_spins: u32,
    /// RNG seed for the mixed op choice and delays.
    pub seed: u64,
    /// Pin workers to cores round-robin (no-op where unsupported).
    pub pin: bool,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            threads: 4,
            ops_per_thread: 100_000,
            prefill: 1024,
            max_delay_spins: 0,
            seed: 0x5eed_cafe,
            pin: false,
        }
    }
}

/// Result of one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Total completed operations across all workers.
    pub ops: u64,
    /// Wall-clock time of the measured region.
    pub elapsed: Duration,
}

impl RunResult {
    /// Million operations per second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Small xorshift* PRNG — deterministic, allocation-free, per-thread.
#[derive(Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (0 is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 { 0x9E3779B97F4A7C15 } else { seed })
    }
    /// Next pseudo-random u64.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

#[inline]
fn random_delay(rng: &mut XorShift, max_spins: u32) {
    if max_spins > 0 {
        let n = (rng.next_u64() % (max_spins as u64 + 1)) as u32;
        for _ in 0..n {
            std::hint::spin_loop();
        }
    }
}

/// Runs one workload once and returns the aggregate result.
pub fn run<Q: BenchQueue>(q: &Q, wl: Workload, cfg: &WorkloadCfg) -> RunResult {
    // Prefill outside the measured region (Mixed only — Pairwise starts
    // empty by construction and EmptyDequeue must stay empty).
    if wl == Workload::Mixed5050 && cfg.prefill > 0 {
        let mut h = q.handle();
        for i in 0..cfg.prefill {
            let _ = h.enqueue(u64::MAX << 33 | i); // tag prefill values
        }
    }
    let barrier = Barrier::new(cfg.threads);
    let total_ops = AtomicU64::new(0);
    // Each worker times its own measured region; the run's wall time is the
    // slowest worker (taking the main thread's clock instead systematically
    // under-measures on oversubscribed machines: the main thread can be
    // descheduled across the start barrier while workers already run).
    let max_nanos = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let barrier = &barrier;
            let total_ops = &total_ops;
            let max_nanos = &max_nanos;
            let cfg = *cfg;
            let qref = q;
            s.spawn(move || {
                if cfg.pin {
                    pin::pin_to_core(t);
                }
                let mut h = qref.handle();
                let mut rng = XorShift::new(cfg.seed ^ (t as u64).wrapping_mul(0xA24B_1741));
                barrier.wait(); // start line
                let started = Instant::now();
                let mut done = 0u64;
                match wl {
                    Workload::Pairwise => {
                        let mut i = 0u64;
                        while done < cfg.ops_per_thread {
                            let v = (t as u64) << 32 | (i & 0xffff_ffff);
                            let _ = h.enqueue(v);
                            random_delay(&mut rng, cfg.max_delay_spins);
                            let _ = h.dequeue();
                            random_delay(&mut rng, cfg.max_delay_spins);
                            i += 1;
                            done += 2;
                        }
                    }
                    Workload::Mixed5050 => {
                        let mut i = 0u64;
                        while done < cfg.ops_per_thread {
                            if rng.next_u64() & 1 == 0 {
                                let v = (t as u64) << 32 | (i & 0xffff_ffff);
                                let _ = h.enqueue(v);
                                i += 1;
                            } else {
                                let _ = h.dequeue();
                            }
                            random_delay(&mut rng, cfg.max_delay_spins);
                            done += 1;
                        }
                    }
                    Workload::EmptyDequeue => {
                        while done < cfg.ops_per_thread {
                            let r = h.dequeue();
                            debug_assert!(r.is_none(), "empty-dequeue queue must stay empty");
                            done += 1;
                        }
                    }
                }
                total_ops.fetch_add(done, Relaxed);
                max_nanos.fetch_max(started.elapsed().as_nanos() as u64, Relaxed);
            });
        }
    });
    RunResult {
        ops: total_ops.load(Relaxed),
        elapsed: Duration::from_nanos(max_nanos.load(Relaxed).max(1)),
    }
}

/// Runs `reps` measured repetitions and returns their Mops/s samples.
pub fn repeat<Q: BenchQueue>(q: &Q, wl: Workload, cfg: &WorkloadCfg, reps: usize) -> Vec<f64> {
    (0..reps).map(|_| run(q, wl, cfg).mops()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{QueueSpec, ScqBench, WcqBench};

    #[test]
    fn xorshift_is_deterministic_and_spread() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let mut ones = 0;
        for _ in 0..1000 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            ones += x & 1;
        }
        // Roughly balanced low bit (needed for the 50/50 op mix).
        assert!((350..=650).contains(&ones), "biased op mix: {ones}");
    }

    #[test]
    fn pairwise_counts_all_ops() {
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 8,
            ..Default::default()
        };
        let q = WcqBench::new(&spec);
        let cfg = WorkloadCfg {
            threads: 2,
            ops_per_thread: 1000,
            ..Default::default()
        };
        let r = run(&q, Workload::Pairwise, &cfg);
        assert_eq!(r.ops, 2000);
        assert!(r.elapsed > Duration::ZERO);
        assert!(r.mops() > 0.0);
    }

    #[test]
    fn empty_dequeue_leaves_queue_empty() {
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 8,
            ..Default::default()
        };
        let q = ScqBench::new(&spec);
        let cfg = WorkloadCfg {
            threads: 2,
            ops_per_thread: 5000,
            ..Default::default()
        };
        let r = run(&q, Workload::EmptyDequeue, &cfg);
        assert_eq!(r.ops, 10_000);
        let mut h = q.handle();
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn mixed_with_delays_runs() {
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 10,
            ..Default::default()
        };
        let q = WcqBench::new(&spec);
        let cfg = WorkloadCfg {
            threads: 3,
            ops_per_thread: 2000,
            prefill: 128,
            max_delay_spins: 32,
            ..Default::default()
        };
        let r = run(&q, Workload::Mixed5050, &cfg);
        assert_eq!(r.ops, 6000);
    }
}
