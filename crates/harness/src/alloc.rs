//! Counting global allocator for the Fig. 10a memory census.
//!
//! The paper measures how much memory each queue design consumes as thread
//! count grows (LCRQ's closed rings and YMC's pinned segments balloon; SCQ
//! and wCQ stay flat at the ring size). We reproduce the census with an
//! allocator wrapper that tracks live bytes and a resettable high-water
//! mark.
//!
//! Figure binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static A: harness::alloc::CountingAlloc = harness::alloc::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around [`System`] that tracks live and peak
/// bytes.
pub struct CountingAlloc;

#[inline]
fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Relaxed) + size;
    // Lock-free max update.
    let mut peak = PEAK.load(Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(cur) => peak = cur,
        }
    }
}

// SAFETY: delegates to `System` for all allocation; bookkeeping is atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded contract.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    // SAFETY (to call): the `GlobalAlloc::dealloc` contract — `ptr` came
    // from this allocator with this `layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    // SAFETY (to call): the `GlobalAlloc::realloc` contract — `ptr` came
    // from this allocator with this `layout`, `new_size` is nonzero.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded contract.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

/// Currently live heap bytes (as seen by this allocator).
pub fn live_bytes() -> usize {
    LIVE.load(Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Relaxed)
}

/// Resets the high-water mark to the current live volume.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Relaxed), Relaxed);
}

#[cfg(test)]
mod tests {
    // Note: the test binary does NOT install CountingAlloc as the global
    // allocator (that would perturb every other test); we exercise the
    // bookkeeping functions directly.
    use super::*;

    #[test]
    fn peak_tracks_max() {
        reset_peak();
        let base = live_bytes();
        note_alloc(1000);
        assert!(peak_bytes() >= base + 1000);
        LIVE.fetch_sub(1000, Relaxed);
        let p = peak_bytes();
        reset_peak();
        assert!(peak_bytes() <= p);
    }
}
