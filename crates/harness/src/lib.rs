//! # harness — benchmark and test infrastructure for the wCQ reproduction
//!
//! This crate provides everything the figure-regeneration binaries and the
//! integration tests share:
//!
//! * [`queues`] — a uniform [`BenchQueue`] trait with
//!   adapters for every queue in the evaluation (wCQ, SCQ, LCRQ, YMC,
//!   CRTurn, CCQueue, MSQueue, FAA);
//! * [`workload`] — the paper's three workloads (§6): pairwise
//!   enqueue–dequeue, 50%/50% random, and empty-queue dequeue, plus the
//!   memory-test variant with tiny random inter-operation delays;
//! * [`blocking`] — the burst workload for the blocking facade (parked vs
//!   spinning consumers): wakeup-latency samples and a process CPU census;
//! * [`stats`] — repetition, mean/stddev and the coefficient of variation
//!   the paper reports (CoV < 0.01), plus latency percentiles;
//! * [`alloc`] — a counting global allocator for the Fig. 10a memory census;
//! * [`pin`] — best-effort thread pinning (`sched_setaffinity`);
//! * [`model`] — a sequential reference model and MPMC delivery checkers
//!   used by the cross-crate integration tests.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod blocking;
pub mod model;
pub mod pin;
pub mod queues;
pub mod stats;
pub mod workload;

pub use queues::{BenchQueue, QueueHandle};
pub use stats::Stats;
pub use workload::{RunResult, Workload, WorkloadCfg};
