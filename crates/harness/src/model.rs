//! Reference models and MPMC checkers used by the integration tests.
//!
//! Two levels of checking:
//!
//! * [`SeqModel`] — a plain `VecDeque` oracle for *sequential* equivalence
//!   (driven by proptest over arbitrary op strings).
//! * [`DeliveryLog`] / [`check_delivery`] — for concurrent runs: verifies
//!   exact-multiset delivery (no loss, no duplication) and per-producer
//!   FIFO order, the two properties every linearizable MPMC queue must
//!   satisfy and that catch essentially all real bugs in queue algorithms.

use std::collections::{HashMap, VecDeque};

/// Sequential queue oracle.
#[derive(Default, Debug)]
pub struct SeqModel {
    inner: VecDeque<u64>,
    capacity: Option<usize>,
}

impl SeqModel {
    /// Unbounded oracle.
    pub fn unbounded() -> Self {
        SeqModel {
            inner: VecDeque::new(),
            capacity: None,
        }
    }

    /// Bounded oracle with `capacity` slots.
    pub fn bounded(capacity: usize) -> Self {
        SeqModel {
            inner: VecDeque::new(),
            capacity: Some(capacity),
        }
    }

    /// Enqueue; `false` when the bounded oracle is full.
    pub fn enqueue(&mut self, v: u64) -> bool {
        if let Some(cap) = self.capacity {
            if self.inner.len() >= cap {
                return false;
            }
        }
        self.inner.push_back(v);
        true
    }

    /// Dequeue; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        self.inner.pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Everything consumers observed in a concurrent run.
#[derive(Default, Debug)]
pub struct DeliveryLog {
    /// All dequeued values, in per-consumer order (consumer id, value).
    pub consumed: Vec<(usize, u64)>,
    /// Values each producer enqueued, in order.
    pub produced: Vec<Vec<u64>>,
}

/// Encodes `(producer, seq)` the way all tests tag values.
pub fn tag(producer: usize, seq: u64) -> u64 {
    (producer as u64) << 32 | (seq & 0xffff_ffff)
}

/// Decodes a tagged value.
pub fn untag(v: u64) -> (usize, u64) {
    ((v >> 32) as usize, v & 0xffff_ffff)
}

/// Verifies exact-multiset delivery and per-producer FIFO order.
/// Panics with a diagnostic on the first violation.
pub fn check_delivery(log: &DeliveryLog) {
    // Exact multiset.
    let mut expected: HashMap<u64, usize> = HashMap::new();
    for vals in &log.produced {
        for &v in vals {
            *expected.entry(v).or_default() += 1;
        }
    }
    for &(_, v) in &log.consumed {
        match expected.get_mut(&v) {
            Some(c) if *c > 0 => *c -= 1,
            _ => panic!("value {v:#x} dequeued but never produced (or duplicated)"),
        }
    }
    let missing: usize = expected.values().sum();
    assert_eq!(missing, 0, "{missing} produced values were never dequeued");

    // Per-producer FIFO: within each consumer's local order, sequence
    // numbers from one producer must increase (single-consumer projection
    // of linearizability for FIFO queues).
    let mut per_consumer_last: HashMap<(usize, usize), u64> = HashMap::new();
    for &(cons, v) in &log.consumed {
        let (p, s) = untag(v);
        if let Some(&last) = per_consumer_last.get(&(cons, p)) {
            assert!(
                s > last,
                "consumer {cons} saw producer {p} out of order: {s} after {last}"
            );
        }
        per_consumer_last.insert((cons, p), s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_bounded_semantics() {
        let mut m = SeqModel::bounded(2);
        assert!(m.enqueue(1));
        assert!(m.enqueue(2));
        assert!(!m.enqueue(3), "full");
        assert_eq!(m.dequeue(), Some(1));
        assert!(m.enqueue(3));
        assert_eq!(m.dequeue(), Some(2));
        assert_eq!(m.dequeue(), Some(3));
        assert_eq!(m.dequeue(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn tag_roundtrip() {
        for p in [0usize, 1, 77, 4095] {
            for s in [0u64, 1, 0xffff_fffe] {
                assert_eq!(untag(tag(p, s)), (p, s));
            }
        }
    }

    #[test]
    fn delivery_ok() {
        let log = DeliveryLog {
            produced: vec![vec![tag(0, 0), tag(0, 1)], vec![tag(1, 0)]],
            consumed: vec![(0, tag(0, 0)), (1, tag(1, 0)), (0, tag(0, 1))],
        };
        check_delivery(&log);
    }

    #[test]
    #[should_panic(expected = "never dequeued")]
    fn delivery_detects_loss() {
        let log = DeliveryLog {
            produced: vec![vec![tag(0, 0), tag(0, 1)]],
            consumed: vec![(0, tag(0, 0))],
        };
        check_delivery(&log);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn delivery_detects_duplication() {
        let log = DeliveryLog {
            produced: vec![vec![tag(0, 0)]],
            consumed: vec![(0, tag(0, 0)), (1, tag(0, 0))],
        };
        check_delivery(&log);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn delivery_detects_reordering() {
        let log = DeliveryLog {
            produced: vec![vec![tag(0, 0), tag(0, 1)]],
            consumed: vec![(0, tag(0, 1)), (0, tag(0, 0))],
        };
        check_delivery(&log);
    }
}
