//! Uniform benchmarking interface over all evaluated queues.
//!
//! Every queue exposes per-thread handles (hazard pointers, combining nodes,
//! helping records, …), so the trait hands out a handle per worker thread
//! (GAT) and the drivers are monomorphized per queue — no virtual dispatch
//! on the hot path, as the perf guide prescribes.

use baselines::{CcQueue, CrTurnQueue, FaaQueue, Lcrq, MsQueue, YmcQueue};
use wcq::unbounded::{InnerRing, Unbounded, UnboundedHandle, WcqInner};
use wcq::{ScqQueue, UnboundedScq, UnboundedWcq, WcqConfig, WcqQueue};

/// A queue that can run the paper's workloads.
pub trait BenchQueue: Sync {
    /// Per-thread access handle.
    type Handle<'a>: QueueHandle + Send
    where
        Self: 'a;
    /// Display name used in the figure tables.
    fn name(&self) -> &'static str;
    /// Registers the calling thread.
    fn handle(&self) -> Self::Handle<'_>;
}

/// Per-thread operations.
pub trait QueueHandle {
    /// Enqueue; `false` when a bounded queue is full.
    fn enqueue(&mut self, v: u64) -> bool;
    /// Dequeue; `None` when empty.
    fn dequeue(&mut self) -> Option<u64>;
}

/// Queue construction parameters shared by the figure harness.
#[derive(Clone, Copy, Debug)]
pub struct QueueSpec {
    /// Maximum worker threads that will touch the queue.
    pub max_threads: usize,
    /// Ring order for the bounded rings (wCQ/SCQ use `2^order`; the paper's
    /// evaluation uses 2^16).
    pub ring_order: u32,
    /// Shard count for [`ShardedWcqBench`] (a power of two; 1 = unsharded).
    /// Total capacity stays `2^ring_order`: each shard gets
    /// `ring_order - log2(shards)`, floored so `max_threads` still fits.
    pub shards: usize,
    /// Per-node ring order for the unbounded adapters
    /// ([`UnboundedWcqBench`]/[`UnboundedScqBench`]): each list node holds
    /// `2^node_order` slots. `None` reuses `ring_order`. Sweeping this is
    /// the Appendix-A cost trade (bigger nodes amortize list traffic,
    /// smaller nodes bound idle memory) — see the `figure_unbounded`
    /// binary.
    pub node_order: Option<u32>,
    /// Tuning knobs for wCQ/SCQ.
    pub cfg: WcqConfig,
}

impl Default for QueueSpec {
    fn default() -> Self {
        QueueSpec {
            max_threads: 8,
            ring_order: 16,
            shards: 1,
            node_order: None,
            cfg: WcqConfig::default(),
        }
    }
}

/// Smallest ring order whose `2^order` slots admit `max_threads`
/// registered threads under the paper's `k <= n` assumption (one bit above
/// the thread count, so the bound holds even off powers of two).
fn min_order_for_threads(max_threads: usize) -> u32 {
    usize::BITS - max_threads.max(2).leading_zeros()
}

impl QueueSpec {
    /// The per-node ring order the unbounded adapters will use, floored so
    /// `max_threads` respects the wCQ rings' `k <= n` assumption.
    pub fn unbounded_order(&self) -> u32 {
        let wanted = self.node_order.unwrap_or(self.ring_order);
        wanted.max(min_order_for_threads(self.max_threads))
    }
}

// ---------------------------------------------------------------- wCQ -----

/// Adapter: the paper's wCQ (wait-free, bounded).
pub struct WcqBench(pub WcqQueue<u64>);

impl WcqBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(spec: &QueueSpec) -> Self {
        WcqBench(WcqQueue::with_config(
            spec.ring_order,
            spec.max_threads,
            &spec.cfg,
        ))
    }
}

impl BenchQueue for WcqBench {
    type Handle<'a> = wcq::WcqHandle<'a, u64>;
    fn name(&self) -> &'static str {
        "wCQ"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("wCQ thread slots exhausted")
    }
}

impl QueueHandle for wcq::WcqHandle<'_, u64> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        WcqHandleExt::enqueue(self, v)
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        WcqHandleExt::dequeue(self)
    }
}

// Helper to disambiguate from the trait method names.
trait WcqHandleExt {
    fn enqueue(&mut self, v: u64) -> bool;
    fn dequeue(&mut self) -> Option<u64>;
}
impl WcqHandleExt for wcq::WcqHandle<'_, u64> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        wcq::WcqHandle::enqueue(self, v).is_ok()
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        wcq::WcqHandle::dequeue(self)
    }
}

// -------------------------------------------------------- sharded wCQ -----

/// Adapter: sharded wCQ front-end (`wcq::shard::ShardedWcq`). Per-handle
/// enqueue affinity, rotating dequeue; total capacity matches the
/// single-ring spec so shard-count sweeps compare like for like.
pub struct ShardedWcqBench(pub wcq::ShardedWcq<u64>);

impl ShardedWcqBench {
    /// Resolved geometry for `spec`: `(shards, per_shard_order)`. Total
    /// capacity is `shards << per_shard_order`; it equals `2^ring_order`
    /// unless the per-shard floor (shards must each fit `max_threads`, the
    /// paper's `k <= n` assumption) forced it larger.
    pub fn geometry(spec: &QueueSpec) -> (usize, u32) {
        let shards = spec.shards.max(1).next_power_of_two();
        let per_shard = spec
            .ring_order
            .saturating_sub(shards.trailing_zeros())
            .max(min_order_for_threads(spec.max_threads));
        (shards, per_shard)
    }

    /// Builds from a [`QueueSpec`], dividing `2^ring_order` total capacity
    /// across `spec.shards` sub-rings. If the per-shard `max_threads`
    /// floor inflates total capacity beyond `2^ring_order`, the actual
    /// geometry is reported on stderr so shard sweeps cannot silently stop
    /// being like-for-like.
    pub fn new(spec: &QueueSpec) -> Self {
        let (shards, per_shard) = Self::geometry(spec);
        let actual = shards << per_shard;
        if actual != 1usize << spec.ring_order {
            eprintln!(
                "ShardedWcqBench: geometry adjusted to {shards} x 2^{per_shard} = {actual} \
                 slots (requested 2^{} = {}): per-shard order floored so \
                 max_threads = {} fits each shard (k <= n)",
                spec.ring_order,
                1usize << spec.ring_order,
                spec.max_threads,
            );
        }
        ShardedWcqBench(wcq::ShardedWcq::with_config(
            shards,
            per_shard,
            spec.max_threads,
            &spec.cfg,
        ))
    }
}

impl BenchQueue for ShardedWcqBench {
    type Handle<'a> = wcq::ShardedHandle<'a, u64>;
    fn name(&self) -> &'static str {
        "wCQ-sharded"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("sharded wCQ thread slots exhausted")
    }
}

impl QueueHandle for wcq::ShardedHandle<'_, u64> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        wcq::ShardedHandle::enqueue(self, v).is_ok()
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        wcq::ShardedHandle::dequeue(self)
    }
}

// ---------------------------------------------------------------- SCQ -----

/// Adapter: SCQ (lock-free, bounded) — the substrate baseline.
pub struct ScqBench(pub ScqQueue<u64>);

impl ScqBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(spec: &QueueSpec) -> Self {
        ScqBench(ScqQueue::with_config(spec.ring_order, &spec.cfg))
    }
}

/// SCQ needs no per-thread state; the handle is a shared reference.
pub struct ScqHandle<'a>(&'a ScqQueue<u64>);

impl BenchQueue for ScqBench {
    type Handle<'a> = ScqHandle<'a>;
    fn name(&self) -> &'static str {
        "SCQ"
    }
    fn handle(&self) -> Self::Handle<'_> {
        ScqHandle(&self.0)
    }
}

impl QueueHandle for ScqHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        self.0.enqueue(v).is_ok()
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

// ----------------------------------------------------- unbounded wCQ ------

/// Adapter: the unbounded wCQ (Appendix A list of wait-free rings behind a
/// lock-free outer list, hazard-pointer reclamation). Never reports full.
pub struct UnboundedWcqBench(pub UnboundedWcq<u64>);

impl UnboundedWcqBench {
    /// Builds from a [`QueueSpec`]; each list node holds
    /// `2^spec.unbounded_order()` slots.
    pub fn new(spec: &QueueSpec) -> Self {
        UnboundedWcqBench(Unbounded::with_config(
            spec.unbounded_order(),
            spec.max_threads,
            &spec.cfg,
        ))
    }
}

impl BenchQueue for UnboundedWcqBench {
    type Handle<'a> = UnboundedHandle<'a, u64, WcqInner<u64>>;
    fn name(&self) -> &'static str {
        "wCQ-unbounded"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0
            .register()
            .expect("unbounded wCQ thread slots exhausted")
    }
}

// ----------------------------------------------------------- LSCQ ---------

/// Adapter: LSCQ (unbounded list of lock-free SCQ rings, the paper's §6
/// baseline shape), hazard-pointer reclamation.
pub struct UnboundedScqBench(pub UnboundedScq<u64>);

impl UnboundedScqBench {
    /// Builds from a [`QueueSpec`]; each list node holds
    /// `2^spec.unbounded_order()` slots.
    pub fn new(spec: &QueueSpec) -> Self {
        UnboundedScqBench(Unbounded::with_config(
            spec.unbounded_order(),
            spec.max_threads,
            &spec.cfg,
        ))
    }
}

impl BenchQueue for UnboundedScqBench {
    type Handle<'a> = UnboundedHandle<'a, u64, ScqQueue<u64>>;
    fn name(&self) -> &'static str {
        "LSCQ"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("LSCQ thread slots exhausted")
    }
}

impl<R: InnerRing<u64>> QueueHandle for UnboundedHandle<'_, u64, R> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        UnboundedHandle::enqueue(self, v);
        true // capacity grows by appending rings
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        UnboundedHandle::dequeue(self)
    }
}

// ------------------------------------------------------------ channel -----

/// Adapter: the owned channel API (`wcq::channel`) over a bounded wCQ.
///
/// Measures what the production-facing surface costs on top of the raw
/// handles: the `Arc` indirection, the per-op closed check, and the lazy
/// endpoint registration. Each worker handle is a cloned
/// `(Sender, Receiver)` pair; endpoints take thread slots lazily on first
/// use, so the prototype pair held here costs nothing while idle — the
/// queue is sized at two slots per worker (sender + receiver endpoint).
pub struct ChannelBench {
    tx: wcq::channel::Sender<u64>,
    rx: wcq::channel::Receiver<u64>,
}

impl ChannelBench {
    /// Builds from a [`QueueSpec`]: capacity `2^ring_order`, two thread
    /// slots per worker plus the drain handle's pair.
    pub fn new(spec: &QueueSpec) -> Self {
        let (tx, rx) = wcq::channel::bounded_with_config(
            spec.ring_order,
            (spec.max_threads + 1) * 2,
            &spec.cfg,
        );
        ChannelBench { tx, rx }
    }
}

/// A worker's endpoint pair for [`ChannelBench`] (owned: no borrow of the
/// bench struct, exactly like the channel API's own users).
pub struct ChannelEndpoints {
    tx: wcq::channel::Sender<u64>,
    rx: wcq::channel::Receiver<u64>,
}

impl BenchQueue for ChannelBench {
    type Handle<'a> = ChannelEndpoints;
    fn name(&self) -> &'static str {
        "wCQ-channel"
    }
    fn handle(&self) -> Self::Handle<'_> {
        ChannelEndpoints {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
        }
    }
}

impl QueueHandle for ChannelEndpoints {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        self.tx.try_send(v).is_ok()
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        self.rx.try_recv().ok()
    }
}

// -------------------------------------------------- topology channels -----

/// Adapter: the channel API over the SPSC-declared topology backend
/// (`wcq::channel::spsc`).
///
/// The harness workloads are MPMC-shaped — every worker holds a sender
/// *and* a receiver clone — so at `threads == 1` this measures the true
/// SPSC ring fast path, while any higher thread count exceeds the declared
/// topology on first use and measures the **upgraded wCQ spine** through
/// the same endpoints (a conformance row, by design: it proves the upgrade
/// keeps the channel serving). The dedicated `figure_topology` binary does
/// the honest per-topology pair measurements.
pub struct SpscChannelBench {
    tx: wcq::channel::Sender<u64>,
    rx: wcq::channel::Receiver<u64>,
}

impl SpscChannelBench {
    /// Builds from a [`QueueSpec`]: one `2^ring_order`-slot ring; the
    /// spine (if the workload upgrades) gets the same two-slots-per-worker
    /// budget as [`ChannelBench`].
    pub fn new(spec: &QueueSpec) -> Self {
        let (tx, rx) = wcq::channel::spsc_with_config(
            spec.ring_order,
            (spec.max_threads + 1) * 2,
            &spec.cfg,
        );
        SpscChannelBench { tx, rx }
    }
}

impl BenchQueue for SpscChannelBench {
    type Handle<'a> = ChannelEndpoints;
    fn name(&self) -> &'static str {
        "chan-spsc"
    }
    fn handle(&self) -> Self::Handle<'_> {
        ChannelEndpoints {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
        }
    }
}

/// Adapter: the channel API over the MPSC-declared topology backend
/// (`wcq::channel::mpsc`) — one private ring per declared sender, capacity
/// split like [`ShardedWcqBench`] so spec sweeps stay like-for-like.
///
/// Same caveat as [`SpscChannelBench`]: the MPMC-shaped workloads clone
/// receivers, so `threads >= 2` upgrades to the spine on first dequeue
/// contention; `threads == 1` runs the ring fast path.
pub struct MpscChannelBench {
    tx: wcq::channel::Sender<u64>,
    rx: wcq::channel::Receiver<u64>,
}

impl MpscChannelBench {
    /// Resolved geometry for `spec`: `(senders, per_ring_order)`, with
    /// total fast-path capacity `senders << per_ring_order` kept at
    /// `2^ring_order` unless the floor (tiny rings) forces it larger.
    pub fn geometry(spec: &QueueSpec) -> (usize, u32) {
        let senders = spec.max_threads.max(1);
        let log2s = senders.next_power_of_two().trailing_zeros();
        let per_ring = spec.ring_order.saturating_sub(log2s).max(2);
        (senders, per_ring)
    }

    /// Builds from a [`QueueSpec`]; each of `max_threads` declared senders
    /// gets a private `2^per_ring_order`-slot ring.
    pub fn new(spec: &QueueSpec) -> Self {
        let (senders, per_ring) = Self::geometry(spec);
        let (tx, rx) = wcq::channel::mpsc_with_config(
            per_ring,
            senders,
            (spec.max_threads + 1) * 2,
            &spec.cfg,
        );
        MpscChannelBench { tx, rx }
    }
}

impl BenchQueue for MpscChannelBench {
    type Handle<'a> = ChannelEndpoints;
    fn name(&self) -> &'static str {
        "chan-mpsc"
    }
    fn handle(&self) -> Self::Handle<'_> {
        ChannelEndpoints {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
        }
    }
}

// ---------------------------------------------------------------- FAA -----

/// Adapter: the F&A upper-bound pseudo-queue.
pub struct FaaBench(pub FaaQueue);

impl FaaBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(_spec: &QueueSpec) -> Self {
        FaaBench(FaaQueue::new())
    }
}

/// Shared-reference handle (FAA keeps no thread state).
pub struct FaaHandle<'a>(&'a FaaQueue);

impl BenchQueue for FaaBench {
    type Handle<'a> = FaaHandle<'a>;
    fn name(&self) -> &'static str {
        "FAA"
    }
    fn handle(&self) -> Self::Handle<'_> {
        FaaHandle(&self.0)
    }
}

impl QueueHandle for FaaHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        self.0.enqueue(v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        self.0.dequeue()
    }
}

// ------------------------------------------------------------ MSQueue -----

/// Adapter: Michael & Scott queue.
pub struct MsBench(pub MsQueue);

impl MsBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(spec: &QueueSpec) -> Self {
        MsBench(MsQueue::new(spec.max_threads))
    }
}

impl BenchQueue for MsBench {
    type Handle<'a> = baselines::msqueue::MsHandle<'a>;
    fn name(&self) -> &'static str {
        "MSQueue"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("MSQueue slots exhausted")
    }
}

impl QueueHandle for baselines::msqueue::MsHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        baselines::msqueue::MsHandle::enqueue(self, v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        baselines::msqueue::MsHandle::dequeue(self)
    }
}

// -------------------------------------------------------------- LCRQ ------

/// Adapter: LCRQ.
pub struct LcrqBench(pub Lcrq);

impl LcrqBench {
    /// Builds from a [`QueueSpec`] (ring order 12, the paper's default).
    pub fn new(spec: &QueueSpec) -> Self {
        LcrqBench(Lcrq::with_ring_order(spec.max_threads, 12))
    }
}

impl BenchQueue for LcrqBench {
    type Handle<'a> = baselines::lcrq::LcrqHandle<'a>;
    fn name(&self) -> &'static str {
        "LCRQ"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("LCRQ slots exhausted")
    }
}

impl QueueHandle for baselines::lcrq::LcrqHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        baselines::lcrq::LcrqHandle::enqueue(self, v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        baselines::lcrq::LcrqHandle::dequeue(self)
    }
}

// --------------------------------------------------------------- YMC ------

/// Adapter: YMC (see DESIGN.md §3.4 for scope).
pub struct YmcBench(pub YmcQueue);

impl YmcBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(spec: &QueueSpec) -> Self {
        YmcBench(YmcQueue::new(spec.max_threads))
    }
}

impl BenchQueue for YmcBench {
    type Handle<'a> = baselines::ymc::YmcHandle<'a>;
    fn name(&self) -> &'static str {
        "YMC (bug)"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("YMC slots exhausted")
    }
}

impl QueueHandle for baselines::ymc::YmcHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        baselines::ymc::YmcHandle::enqueue(self, v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        baselines::ymc::YmcHandle::dequeue(self)
    }
}

// ------------------------------------------------------------- CRTurn -----

/// Adapter: CRTurn.
pub struct CrTurnBench(pub CrTurnQueue);

impl CrTurnBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(spec: &QueueSpec) -> Self {
        CrTurnBench(CrTurnQueue::new(spec.max_threads))
    }
}

impl BenchQueue for CrTurnBench {
    type Handle<'a> = baselines::crturn::CrTurnHandle<'a>;
    fn name(&self) -> &'static str {
        "CRTurn"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register().expect("CRTurn slots exhausted")
    }
}

impl QueueHandle for baselines::crturn::CrTurnHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        baselines::crturn::CrTurnHandle::enqueue(self, v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        baselines::crturn::CrTurnHandle::dequeue(self)
    }
}

// ------------------------------------------------------------ CCQueue -----

/// Adapter: CC-Synch combining queue.
pub struct CcBench(pub CcQueue);

impl CcBench {
    /// Builds from a [`QueueSpec`].
    pub fn new(_spec: &QueueSpec) -> Self {
        CcBench(CcQueue::new())
    }
}

impl BenchQueue for CcBench {
    type Handle<'a> = baselines::ccqueue::CcHandle<'a>;
    fn name(&self) -> &'static str {
        "CCQueue"
    }
    fn handle(&self) -> Self::Handle<'_> {
        self.0.register()
    }
}

impl QueueHandle for baselines::ccqueue::CcHandle<'_> {
    #[inline]
    fn enqueue(&mut self, v: u64) -> bool {
        baselines::ccqueue::CcHandle::enqueue(self, v);
        true
    }
    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        baselines::ccqueue::CcHandle::dequeue(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<Q: BenchQueue>(q: &Q) {
        let mut h = q.handle();
        assert!(h.enqueue(41));
        assert!(h.enqueue(42));
        assert_eq!(h.dequeue(), Some(41));
        assert_eq!(h.dequeue(), Some(42));
    }

    #[test]
    fn all_adapters_roundtrip() {
        let spec = QueueSpec {
            max_threads: 2,
            ring_order: 6,
            shards: 2,
            node_order: Some(2),
            cfg: WcqConfig::default(),
        };
        roundtrip(&WcqBench::new(&spec));
        roundtrip(&ShardedWcqBench::new(&spec));
        roundtrip(&ScqBench::new(&spec));
        roundtrip(&UnboundedWcqBench::new(&spec));
        roundtrip(&UnboundedScqBench::new(&spec));
        roundtrip(&MsBench::new(&spec));
        roundtrip(&LcrqBench::new(&spec));
        roundtrip(&YmcBench::new(&spec));
        roundtrip(&CrTurnBench::new(&spec));
        roundtrip(&CcBench::new(&spec));
        roundtrip(&SpscChannelBench::new(&spec));
        roundtrip(&MpscChannelBench::new(&spec));
        // FAA is not a real queue; it only counts.
        let f = FaaBench::new(&spec);
        let mut h = f.handle();
        assert!(h.enqueue(1));
        assert!(h.dequeue().is_some());
    }

    #[test]
    fn names_are_paper_labels() {
        let spec = QueueSpec::default();
        assert_eq!(WcqBench::new(&spec).name(), "wCQ");
        assert_eq!(YmcBench::new(&spec).name(), "YMC (bug)");
        assert_eq!(ShardedWcqBench::new(&spec).name(), "wCQ-sharded");
        assert_eq!(UnboundedWcqBench::new(&spec).name(), "wCQ-unbounded");
        assert_eq!(UnboundedScqBench::new(&spec).name(), "LSCQ");
        assert_eq!(ChannelBench::new(&spec).name(), "wCQ-channel");
        assert_eq!(SpscChannelBench::new(&spec).name(), "chan-spsc");
        assert_eq!(MpscChannelBench::new(&spec).name(), "chan-mpsc");
    }

    #[test]
    fn mpsc_geometry_splits_capacity() {
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 10,
            ..QueueSpec::default()
        };
        let (senders, per_ring) = MpscChannelBench::geometry(&spec);
        assert_eq!(senders, 4);
        assert_eq!(senders << per_ring, 1 << 10, "capacity split, not multiplied");
        // The per-ring floor inflates tiny splits rather than underflowing.
        let spec = QueueSpec {
            max_threads: 16,
            ring_order: 3,
            ..QueueSpec::default()
        };
        let (_, per_ring) = MpscChannelBench::geometry(&spec);
        assert!(per_ring >= 2);
    }

    #[test]
    fn sharded_spec_preserves_total_capacity() {
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 10,
            shards: 4,
            ..QueueSpec::default()
        };
        let q = ShardedWcqBench::new(&spec);
        assert_eq!(q.0.shards(), 4);
        assert_eq!(q.0.capacity(), 1 << 10, "capacity split, not multiplied");
        let (shards, per_shard) = ShardedWcqBench::geometry(&spec);
        assert_eq!(shards << per_shard, 1 << 10, "geometry reports the split");
        // Tiny rings still fit max_threads per shard — and the resulting
        // capacity inflation is visible through `geometry`, not silent.
        let spec = QueueSpec {
            max_threads: 16,
            ring_order: 4,
            shards: 8,
            ..QueueSpec::default()
        };
        let q = ShardedWcqBench::new(&spec);
        assert!(q.0.capacity() / q.0.shards() >= 16);
        let (shards, per_shard) = ShardedWcqBench::geometry(&spec);
        assert_eq!(shards << per_shard, q.0.capacity());
        assert!(
            (shards << per_shard) > 1 << 4,
            "the floor case must be detectable as capacity != 2^ring_order"
        );
    }

    #[test]
    fn unbounded_order_respects_thread_floor() {
        // node_order 1 (2-slot rings) cannot admit 8 threads under k <= n;
        // the resolved order must grow to fit them.
        let spec = QueueSpec {
            max_threads: 8,
            ring_order: 10,
            node_order: Some(1),
            ..QueueSpec::default()
        };
        assert!(1usize << spec.unbounded_order() >= 8);
        // Without the knob, ring_order passes through.
        let spec = QueueSpec {
            max_threads: 4,
            ring_order: 10,
            ..QueueSpec::default()
        };
        assert_eq!(spec.unbounded_order(), 10);
    }
}
