//! The soak harness: drive a pipeline at a target rate for a fixed wall
//! duration, optionally under an injected fault profile, and report
//! sustained throughput, drop rate, and flush-latency percentiles.
//!
//! One implementation, three consumers: the `collector-soak` binary, the
//! `figure_collector` oversubscription sweep, and the CI smoke tests —
//! so the numbers CI gates on come from exactly the code a human runs by
//! hand.

use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::stats::LatencyStats;

use crate::export::{FailEvery, FaultInjector, NoFaults, NullExporter, StallFor};
use crate::metrics::MetricsSnapshot;
use crate::pipeline::{Collector, CollectorConfig};
use crate::sim;
use crate::span::Span;

/// Fault profile knob shared by the soak binary and the tests. Kept as
/// data (not a boxed injector) so it can be parsed from a CLI flag and
/// printed back into the report banner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults.
    #[default]
    None,
    /// Fail every `n`-th export attempt ([`FailEvery`]).
    FailEvery(u64),
    /// Stall every `every`-th attempt for `dur` ([`StallFor`]).
    StallFor {
        /// Stall every `every`-th attempt.
        every: u64,
        /// Stall duration.
        dur: Duration,
    },
}

impl FaultProfile {
    /// Materializes the profile as an injector for [`Collector::spawn`].
    pub fn injector(self) -> Arc<dyn FaultInjector> {
        match self {
            FaultProfile::None => Arc::new(NoFaults),
            FaultProfile::FailEvery(n) => Arc::new(FailEvery::new(n)),
            FaultProfile::StallFor { every, dur } => Arc::new(StallFor::new(every, dur)),
        }
    }
}

impl std::fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultProfile::None => f.write_str("none"),
            FaultProfile::FailEvery(n) => write!(f, "fail-every={n}"),
            FaultProfile::StallFor { every, dur } => {
                write!(f, "stall={every}:{}us", dur.as_micros())
            }
        }
    }
}

/// One soak run's shape.
#[derive(Clone, Debug)]
pub struct SoakCfg {
    /// Producer threads submitting spans.
    pub producers: usize,
    /// Aggregate target rate across all producers, spans/s; `None` runs
    /// producers flat out (the throughput-ceiling mode).
    pub rate: Option<u64>,
    /// Wall-clock run duration.
    pub duration: Duration,
    /// Pipeline sizing and policy.
    pub pipeline: CollectorConfig,
    /// Injected fault profile.
    pub fault: FaultProfile,
}

impl Default for SoakCfg {
    fn default() -> SoakCfg {
        SoakCfg {
            producers: 4,
            rate: None,
            duration: Duration::from_secs(1),
            pipeline: CollectorConfig::default(),
            fault: FaultProfile::None,
        }
    }
}

/// What a soak run measured.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Wall time from first submit to pipeline join.
    pub elapsed: Duration,
    /// Spans offered by producers (accepted + shed).
    pub submitted: u64,
    /// Final exact counters (post-join).
    pub metrics: MetricsSnapshot,
    /// Flush-latency distribution (first-span-buffered → batch-exported).
    pub flush_latency: LatencyStats,
}

impl SoakReport {
    /// Sustained export throughput, spans/s.
    pub fn throughput(&self) -> f64 {
        self.metrics.exported as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of *offered* spans shed at ingest (load shedding, not
    /// loss — shed spans were never accepted).
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.metrics.shed as f64 / self.submitted as f64
        }
    }

    /// Fraction of *accepted* spans dropped by the overflow policy.
    pub fn drop_rate(&self) -> f64 {
        if self.metrics.accepted == 0 {
            0.0
        } else {
            self.metrics.dropped as f64 / self.metrics.accepted as f64
        }
    }

    /// The conservation identity over the final counters.
    pub fn conserved(&self) -> bool {
        self.metrics.conserved()
    }
}

/// Runs one soak: spawn the pipeline, hammer it from `cfg.producers`
/// threads for `cfg.duration`, ripple the shutdown, join, and account.
///
/// Producers pace themselves against the aggregate `rate` in 256-span
/// strides (sleep when ahead of schedule); with `rate: None` they submit
/// back-to-back. Each producer walks its own trace-id arithmetic sequence
/// chosen so the population covers every shard evenly.
pub fn run_soak(cfg: &SoakCfg) -> SoakReport {
    let (collector, sender) =
        Collector::<NullExporter>::spawn(cfg.pipeline.clone(), NullExporter, cfg.fault.injector());

    let started = Instant::now();
    let per_producer_rate = cfg.rate.map(|r| (r / cfg.producers.max(1) as u64).max(1));
    let producers: Vec<_> = (0..cfg.producers.max(1))
        .map(|p| {
            let mut tx = sender.clone();
            let duration = cfg.duration;
            sim::spawn(move || {
                let begin = Instant::now();
                let mut submitted = 0u64;
                let mut seq = 0u64;
                loop {
                    // Stride of 256 between deadline/pacing checks keeps
                    // the Instant reads off the per-span fast path.
                    for _ in 0..256 {
                        let span = Span {
                            // p offsets the sequence so concurrent
                            // producers spread over shards instead of
                            // convoying on one lane.
                            trace: p as u64 + seq,
                            id: seq,
                            start_ns: seq.wrapping_mul(31),
                            dur_ns: 100,
                        };
                        tx.submit(span);
                        submitted += 1;
                        seq += 1;
                    }
                    let elapsed = begin.elapsed();
                    if elapsed >= duration {
                        return submitted;
                    }
                    if let Some(rate) = per_producer_rate {
                        let on_schedule =
                            Duration::from_secs_f64(submitted as f64 / rate as f64);
                        if let Some(ahead) = on_schedule.checked_sub(elapsed) {
                            sim::sleep(ahead.min(Duration::from_millis(5)));
                        }
                    }
                }
            })
        })
        .collect();

    let mut submitted = 0u64;
    for h in producers {
        submitted += h.join().expect("soak producer panicked");
    }
    // Last producer clone is gone; drop the template to start the close
    // ripple, then join the pipeline while it drains.
    drop(sender);
    let (report, _exporter) = collector.shutdown();
    let elapsed = started.elapsed();

    SoakReport {
        elapsed,
        submitted,
        metrics: report.metrics,
        flush_latency: report.flush_latency,
    }
}
