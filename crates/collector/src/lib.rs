//! A telemetry span collector built exclusively on the `wcq::channel`
//! stack — the "service crate" proof that the queue facade is complete
//! enough to carry a real pipeline, not just microbenchmarks.
//!
//! The shape (DESIGN.md §14): producers [`SpanSender::submit`] spans into
//! per-shard `channel::mpsc` lanes (shard = trace id mod shards, so a
//! trace's spans stay FIFO through one lane); batching workers sweep
//! disjoint lane subsets with `recv_batch`, flush on size or deadline,
//! and park across all their lanes with `channel::recv_any` when idle;
//! a single exporter stage applies a bounded [`RetryPolicy`] around a
//! pluggable [`Exporter`] sink, with a [`FaultInjector`] seam
//! ([`FailEvery`], [`StallFor`]) shared by the tests, the DST model, and
//! the `collector-soak` binary.
//!
//! The crate's contract is **conservation**: every accepted span is
//! exported exactly once or explicitly counted dropped — by count and by
//! content checksum ([`MetricsSnapshot::conserved`]) — across deadline
//! flushes, injected faults, and the refcount-ripple shutdown. Overload
//! sheds at the ingest edge under an explicit [`ShedPolicy`]; shed spans
//! are counted, never accepted, so shedding is load management, not loss.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod sim;

pub mod export;
pub mod metrics;
pub mod pipeline;
pub mod soak;
pub mod span;

pub use export::{
    ExportError, Exporter, FailEvery, FaultAction, FaultInjector, NoFaults, NullExporter,
    OverflowPolicy, RetryPolicy, StallFor, VecExporter,
};
pub use metrics::{Metrics, MetricsSnapshot, ShardSnapshot};
pub use pipeline::{Collector, CollectorConfig, CollectorReport, ShedPolicy, SpanSender};
pub use soak::{run_soak, FaultProfile, SoakCfg, SoakReport};
pub use span::Span;
