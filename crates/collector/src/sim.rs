//! Thread seam: `std::thread` in production builds, the `shuttle-lite`
//! cooperative shims under `--cfg wcq_dst`, mirroring `wcq`'s own seam so
//! the deterministic-schedule tests (`tests/dst/` model 8) can explore the
//! collector's drain path at schedule granularity. Outside an active
//! exploration the shims pass through to `std`, so the ordinary suite
//! still runs under the cfg.
//!
//! The metrics counters deliberately stay on `std` atomics even in DST
//! builds: they carry no synchronization (pure Relaxed tallies), and
//! keeping them off the explorer's step counter keeps model 8's schedule
//! space the size of the *protocol*, not the bookkeeping.

#[cfg(not(wcq_dst))]
pub(crate) use std::thread::{spawn, JoinHandle};

#[cfg(wcq_dst)]
pub(crate) use shuttle_lite::thread::{spawn, yield_now, JoinHandle};

/// Sleeps `d`, as a scheduling no-op under DST (a cooperative yield: the
/// simulated clock has no sleep, and blocking an OS thread that holds the
/// scheduler baton would stall the whole exploration for real time).
pub(crate) fn sleep(d: std::time::Duration) {
    #[cfg(wcq_dst)]
    if shuttle_lite::in_sim() {
        let _ = d;
        yield_now();
        return;
    }
    std::thread::sleep(d);
}
