//! The collector pipeline: sharded ingest lanes → batching workers →
//! resilient exporter, every stage joined by `wcq::channel` endpoints.
//!
//! ```text
//!  SpanSender ──try_send──► lane 0 (channel::mpsc) ─┐
//!  SpanSender ──try_send──► lane 1                  ├─ worker 0 ─┐
//!      ...                    ...                   │            ├─► export
//!  SpanSender ──try_send──► lane S-1               ─┴─ worker W-1┘   queue ─► exporter
//! ```
//!
//! Shutdown is a refcount ripple, not a flag: dropping the last
//! [`SpanSender`] closes every lane (last-sender-out close in
//! `wcq::channel`); each worker drains its lanes to `Closed`, flushes the
//! final partial batch, and drops its export-queue sender; the last
//! worker out closes the export queue; the exporter drains it to `Closed`
//! and returns. No span accepted before the ripple can be lost — that is
//! the conservation identity [`crate::MetricsSnapshot::conserved`]
//! asserts, and DST model 8 explores the deadline-flush/shutdown-drain
//! race at schedule granularity.

use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::stats::{LatencyStats, Reservoir};
use wcq::channel::{self, Receiver, Sender, TrySendError};
use wcq::sync::{RecvError, SendError};

use crate::export::{
    ExportError, Exporter, FaultAction, FaultInjector, OverflowPolicy, RetryPolicy,
};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::sim;
use crate::span::Span;

/// Which shard (lane, counter block) a span belongs to. Derived from the
/// trace id on both edges of the pipeline — ingest (`submit`) and export
/// accounting — so a batch never needs to carry shard tags.
pub(crate) fn shard_of(trace: u64, shards: usize) -> usize {
    (trace % shards as u64) as usize
}

/// What [`SpanSender::submit`] does when a span's lane is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the span (`submit` returns `false`, the shard's `shed`
    /// counter is bumped) and return immediately. The telemetry default:
    /// the pipeline must never add latency to the code being traced.
    #[default]
    Shed,
    /// Park the producer until the lane has room. Turns overload into
    /// producer backpressure instead of data loss; for pipelines feeding
    /// an auditor rather than a dashboard.
    Block,
}

/// Sizing and policy for one collector pipeline.
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Ingest shards = independent MPSC lanes (spans shard by trace id).
    pub shards: usize,
    /// Per-producer ring capacity in each lane is `2^lane_order` slots.
    pub lane_order: u32,
    /// Declared concurrently-submitting [`SpanSender`] clones per lane.
    /// More than this still works — the lane grafts its wait-free spine,
    /// exactly as `channel::mpsc` documents — but seated producers are
    /// faster, so declare the real number.
    pub producers: usize,
    /// Batching worker threads. Lanes are distributed round-robin;
    /// clamped to `1..=shards` (a lane has exactly one sweeper).
    pub workers: usize,
    /// Flush a batch when it reaches this many spans.
    pub batch_max: usize,
    /// Flush a non-empty batch this long after its first span arrived,
    /// full or not — the freshness bound on exported telemetry.
    pub flush_after: Duration,
    /// Ingest overload response.
    pub shed: ShedPolicy,
    /// Export retry budget and backoff.
    pub retry: RetryPolicy,
    /// What happens to a batch whose retries are exhausted.
    pub overflow: OverflowPolicy,
    /// Export queue capacity is `2^export_order` batches; when the
    /// exporter stalls and the queue fills, workers park on it (batch
    /// backpressure), which in turn fills lanes and engages [`ShedPolicy`]
    /// at the ingest edge — overload sheds at the cheap edge, never
    /// mid-pipeline.
    pub export_order: u32,
    /// Flush-latency samples retained for the report percentiles.
    pub latency_reservoir: usize,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            shards: 4,
            lane_order: 10,
            producers: 4,
            workers: 2,
            batch_max: 128,
            flush_after: Duration::from_millis(5),
            shed: ShedPolicy::Shed,
            retry: RetryPolicy::default(),
            overflow: OverflowPolicy::Drop,
            export_order: 6,
            latency_reservoir: 4096,
        }
    }
}

/// Producer handle. Cloneable — each clone clones every lane sender, so
/// the lanes' close ripples exactly when the **last** clone drops.
pub struct SpanSender {
    lanes: Vec<Sender<Span>>,
    metrics: Arc<Metrics>,
    shed: ShedPolicy,
}

impl SpanSender {
    /// Offers one span to its shard's lane. Returns `true` iff the span
    /// was accepted (it will be exported or counted dropped — never
    /// silently lost). `false` means it was shed at ingest: lane full
    /// under [`ShedPolicy::Shed`], or the pipeline already shut down.
    pub fn submit(&mut self, span: Span) -> bool {
        let shard = shard_of(span.trace, self.lanes.len());
        let accepted = match self.shed {
            ShedPolicy::Shed => match self.lanes[shard].try_send(span) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Closed(_)) => false,
            },
            ShedPolicy::Block => match self.lanes[shard].send(span) {
                Ok(()) => true,
                Err(SendError::Closed(_)) => false,
                // Untimed send never reports Timeout.
                Err(SendError::Timeout(_)) => unreachable!("send() has no deadline"),
            },
        };
        // Counted after the send lands: a span is "accepted" only once a
        // worker can actually see it. The totals are read post-join, so
        // the gap is invisible to the conservation check.
        if accepted {
            self.metrics.on_accept(shard, &span);
        } else {
            self.metrics.on_shed(shard);
        }
        accepted
    }

    /// Live counter view shared with the pipeline.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }
}

impl Clone for SpanSender {
    fn clone(&self) -> SpanSender {
        SpanSender {
            lanes: self.lanes.clone(),
            metrics: Arc::clone(&self.metrics),
            shed: self.shed,
        }
    }
}

/// One flushed batch in flight from a worker to the exporter stage.
struct Batch {
    spans: Vec<Span>,
    /// When the batch's first span entered the worker's buffer; the
    /// exporter turns this into the flush-latency sample.
    opened: Instant,
}

/// Everything the pipeline can report about a finished run.
#[derive(Clone, Debug)]
pub struct CollectorReport {
    /// Final (exact — all threads joined) counter totals.
    pub metrics: MetricsSnapshot,
    /// Distribution of first-span-buffered → batch-exported latency,
    /// from a bounded uniform sample (see [`Reservoir`]).
    pub flush_latency: LatencyStats,
}

/// A running pipeline: worker and exporter threads plus the shared
/// counters. Created by [`Collector::spawn`]; reclaimed by
/// [`Collector::shutdown`].
pub struct Collector<E: Exporter> {
    workers: Vec<sim::JoinHandle<()>>,
    export: sim::JoinHandle<(E, Vec<u64>)>,
    metrics: Arc<Metrics>,
}

impl<E: Exporter + 'static> Collector<E> {
    /// Builds the lanes, spawns `cfg.workers` batching workers and the
    /// exporter thread, and returns the pipeline plus the template
    /// [`SpanSender`]. Clone the sender onto producer threads; the
    /// pipeline owns no sender itself, so the close ripple starts the
    /// moment the last clone drops.
    ///
    /// # Panics
    ///
    /// If `cfg.shards == 0` or `cfg.batch_max == 0`.
    pub fn spawn(
        cfg: CollectorConfig,
        exporter: E,
        faults: Arc<dyn FaultInjector>,
    ) -> (Collector<E>, SpanSender) {
        assert!(cfg.shards > 0, "collector needs at least one shard");
        assert!(cfg.batch_max > 0, "batch_max of zero can never flush");
        let workers = cfg.workers.clamp(1, cfg.shards);
        let metrics = Arc::new(Metrics::new(cfg.shards));

        // Export queue: workers (+ the soon-dropped template) in, one
        // exporter out.
        let (batch_tx, batch_rx) =
            channel::mpsc::<Batch>(cfg.export_order, workers + 1, workers + 3);

        // Ingest lanes, receivers dealt round-robin to workers.
        let mut lane_txs = Vec::with_capacity(cfg.shards);
        let mut worker_lanes: Vec<Vec<Receiver<Span>>> =
            (0..workers).map(|_| Vec::new()).collect();
        for shard in 0..cfg.shards {
            // Slots: `producers` seated sender handles + the sweeping
            // worker + slack for the template/overflow clones.
            let (tx, rx) =
                channel::mpsc::<Span>(cfg.lane_order, cfg.producers, cfg.producers + 2);
            lane_txs.push(tx);
            worker_lanes[shard % workers].push(rx);
        }

        let worker_handles = worker_lanes
            .into_iter()
            .map(|lanes| {
                let w = Worker {
                    lanes,
                    batch_tx: batch_tx.clone(),
                    metrics: Arc::clone(&metrics),
                    batch_max: cfg.batch_max,
                    flush_after: cfg.flush_after,
                    shards: cfg.shards,
                };
                sim::spawn(move || w.run())
            })
            .collect();
        // The workers hold the only live export-queue senders now; the
        // last worker to exit closes it under the exporter.
        drop(batch_tx);

        let stage = ExportStage {
            rx: batch_rx,
            exporter,
            faults,
            retry: cfg.retry,
            overflow: cfg.overflow,
            metrics: Arc::clone(&metrics),
            shards: cfg.shards,
            latency: Reservoir::new(cfg.latency_reservoir.max(1)),
        };
        let export = sim::spawn(move || stage.run());

        let sender = SpanSender {
            lanes: lane_txs,
            metrics: Arc::clone(&metrics),
            shed: cfg.shed,
        };
        (
            Collector {
                workers: worker_handles,
                export,
                metrics,
            },
            sender,
        )
    }

    /// Live (relaxed, possibly mid-flight) counter snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Joins the pipeline after the close ripple and returns the final
    /// report plus the exporter (so tests can inspect what it received).
    ///
    /// Blocks until every worker and the exporter exit — which requires
    /// every [`SpanSender`] clone to have been dropped first; call this
    /// after releasing them. In-flight spans are drained, not discarded:
    /// workers sweep their lanes to `Closed` and flush the final partial
    /// batch before exiting.
    pub fn shutdown(self) -> (CollectorReport, E) {
        for w in self.workers {
            w.join().expect("collector worker panicked");
        }
        let (exporter, samples) = self.export.join().expect("collector exporter panicked");
        let report = CollectorReport {
            metrics: self.metrics.snapshot(),
            flush_latency: LatencyStats::from_ns_samples(samples),
        };
        (report, exporter)
    }
}

// ===================================================================
// Worker: sweep lanes, batch, flush on size or deadline
// ===================================================================

struct Worker {
    lanes: Vec<Receiver<Span>>,
    batch_tx: Sender<Batch>,
    metrics: Arc<Metrics>,
    batch_max: usize,
    flush_after: Duration,
    shards: usize,
}

impl Worker {
    fn run(mut self) {
        let mut buf: Vec<Span> = Vec::with_capacity(self.batch_max);
        let mut opened: Option<Instant> = None;
        loop {
            // Sweep every lane while there is room in the batch. A lane
            // that closed mid-sweep just yields nothing here; recv_any
            // below is what detects all-closed.
            let mut got = 0;
            for rx in self.lanes.iter_mut() {
                let room = self.batch_max - buf.len();
                if room == 0 {
                    break;
                }
                got += rx.recv_batch(&mut buf, room);
            }
            if opened.is_none() && !buf.is_empty() {
                opened = Some(Instant::now());
            }
            if buf.len() >= self.batch_max {
                self.flush(&mut buf, &mut opened, false);
                continue;
            }
            if let Some(o) = opened {
                if o.elapsed() >= self.flush_after {
                    self.flush(&mut buf, &mut opened, true);
                    continue;
                }
            }
            if got > 0 {
                // Data is flowing; keep sweeping rather than parking.
                continue;
            }
            // Idle. Park across all lanes; a pending deadline bounds the
            // wait so a lone buffered span still ships on time.
            let timeout = opened.map(|o| self.flush_after.saturating_sub(o.elapsed()));
            match channel::recv_any(&mut self.lanes, timeout) {
                Ok((_, span)) => {
                    if opened.is_none() {
                        opened = Some(Instant::now());
                    }
                    buf.push(span);
                }
                Err(RecvError::Timeout) => self.flush(&mut buf, &mut opened, true),
                Err(RecvError::Closed) => {
                    // Every lane closed *and* drained: the shutdown
                    // ripple. Ship what is buffered and retire.
                    self.flush(&mut buf, &mut opened, false);
                    return;
                }
            }
        }
    }

    fn flush(&mut self, buf: &mut Vec<Span>, opened: &mut Option<Instant>, deadline: bool) {
        let Some(opened_at) = opened.take() else {
            return; // empty batch, nothing to ship
        };
        let spans = std::mem::replace(buf, Vec::with_capacity(self.batch_max));
        self.metrics.on_flush(deadline);
        match self.batch_tx.send(Batch {
            spans,
            opened: opened_at,
        }) {
            Ok(()) => {}
            Err(SendError::Closed(batch)) | Err(SendError::Timeout(batch)) => {
                // Closed is unreachable in the normal lifecycle (the
                // exporter holds the receiver until this sender closes)
                // and Timeout cannot come from an untimed send, but if
                // either ever surfaces the spans must still be accounted,
                // not lost.
                for s in &batch.spans {
                    self.metrics.on_drop(shard_of(s.trace, self.shards), s);
                }
            }
        }
    }
}

// ===================================================================
// Exporter stage: bounded retry, fault injection, overflow accounting
// ===================================================================

struct ExportStage<E: Exporter> {
    rx: Receiver<Batch>,
    exporter: E,
    faults: Arc<dyn FaultInjector>,
    retry: RetryPolicy,
    overflow: OverflowPolicy,
    metrics: Arc<Metrics>,
    shards: usize,
    latency: Reservoir,
}

impl<E: Exporter> ExportStage<E> {
    fn run(mut self) -> (E, Vec<u64>) {
        // `recv` without a timeout only ever yields a value or Closed;
        // Closed here means every worker has flushed its final batch.
        while let Ok(batch) = self.rx.recv() {
            self.export_batch(batch);
        }
        (self.exporter, self.latency.into_samples())
    }

    fn export_batch(&mut self, batch: Batch) {
        let budget = self.retry.max_attempts.max(1);
        for attempt in 1..=budget {
            let outcome = match self.faults.before_attempt() {
                FaultAction::Proceed => self.exporter.export(&batch.spans),
                FaultAction::Fail => Err(ExportError),
                FaultAction::Stall(d) => {
                    sim::sleep(d);
                    self.exporter.export(&batch.spans)
                }
            };
            match outcome {
                Ok(()) => {
                    for s in &batch.spans {
                        self.metrics.on_export(shard_of(s.trace, self.shards), s);
                    }
                    self.latency
                        .push(batch.opened.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    return;
                }
                Err(ExportError) => {
                    self.metrics.on_export_failure();
                    if attempt < budget {
                        self.metrics.on_retry();
                        sim::sleep(self.retry.backoff);
                    }
                }
            }
        }
        // Retries exhausted: the overflow policy decides, and every span
        // stays accounted either way.
        match self.overflow {
            OverflowPolicy::Drop => {
                for s in &batch.spans {
                    self.metrics.on_drop(shard_of(s.trace, self.shards), s);
                }
            }
        }
    }
}
