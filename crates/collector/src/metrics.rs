//! Lossy pipeline counters, `ringmpsc`-`metrics.rs` style: per-shard
//! cache-padded blocks bumped with `Relaxed` RMWs on the hot paths, read
//! as point-in-time relaxed snapshots. "Lossy" refers to the *snapshot*
//! — a concurrent reader can see a span counted accepted but not yet
//! exported — never to the counters themselves: after shutdown (all
//! producers and pipeline threads joined) the totals are exact, which is
//! what the conservation accounting asserts.

use crossbeam_utils::CachePadded;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;

use crate::span::Span;

/// One ingest shard's counters, padded onto private cache lines so shard
/// A's producers never false-share with shard B's.
#[derive(Default)]
struct ShardBlock {
    /// Spans taken by the shard's lane (`submit` returned `true`).
    accepted: AtomicU64,
    /// Spans refused at ingest (lane full under [`crate::ShedPolicy::Shed`],
    /// or submitted after close).
    shed: AtomicU64,
    /// Spans the exporter stage confirmed exported.
    exported: AtomicU64,
    /// Spans dropped by the exporter overflow policy (retries exhausted).
    dropped: AtomicU64,
}

/// Pipeline-global counters (export-side; not per-shard because one
/// exporter thread owns them — padding separates them from the shard
/// blocks, not from each other).
#[derive(Default)]
struct GlobalBlock {
    /// Export attempts that returned an error (injected or real).
    export_failures: AtomicU64,
    /// Re-attempts scheduled after a failed export.
    retries: AtomicU64,
    /// Batches handed to the exporter stage.
    flushes: AtomicU64,
    /// The subset of `flushes` forced by the flush deadline (vs. a full
    /// batch or the shutdown drain).
    deadline_flushes: AtomicU64,
    /// Order-independent XOR checksum of accepted spans (see
    /// [`Span::checksum`]).
    accepted_ck: AtomicU64,
    /// XOR checksum of exported spans.
    exported_ck: AtomicU64,
    /// XOR checksum of overflow-dropped spans.
    dropped_ck: AtomicU64,
}

/// The collector's counter set. One instance per pipeline, shared by
/// every [`crate::SpanSender`], worker, and the exporter stage.
pub struct Metrics {
    shards: Box<[CachePadded<ShardBlock>]>,
    global: CachePadded<GlobalBlock>,
}

impl Metrics {
    /// Counters for `shards` ingest shards, all zero.
    pub fn new(shards: usize) -> Metrics {
        Metrics {
            shards: (0..shards).map(|_| CachePadded::default()).collect(),
            global: CachePadded::default(),
        }
    }

    /// Number of ingest shards this counter set covers.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn on_accept(&self, shard: usize, span: &Span) {
        self.shards[shard].accepted.fetch_add(1, Relaxed);
        self.global.accepted_ck.fetch_xor(span.checksum(), Relaxed);
    }

    pub(crate) fn on_shed(&self, shard: usize) {
        self.shards[shard].shed.fetch_add(1, Relaxed);
    }

    pub(crate) fn on_export(&self, shard: usize, span: &Span) {
        self.shards[shard].exported.fetch_add(1, Relaxed);
        self.global.exported_ck.fetch_xor(span.checksum(), Relaxed);
    }

    pub(crate) fn on_drop(&self, shard: usize, span: &Span) {
        self.shards[shard].dropped.fetch_add(1, Relaxed);
        self.global.dropped_ck.fetch_xor(span.checksum(), Relaxed);
    }

    pub(crate) fn on_export_failure(&self) {
        self.global.export_failures.fetch_add(1, Relaxed);
    }

    pub(crate) fn on_retry(&self) {
        self.global.retries.fetch_add(1, Relaxed);
    }

    pub(crate) fn on_flush(&self, deadline: bool) {
        self.global.flushes.fetch_add(1, Relaxed);
        if deadline {
            self.global.deadline_flushes.fetch_add(1, Relaxed);
        }
    }

    /// Point-in-time relaxed snapshot. Mid-flight the identities may lag
    /// (a span can be accepted but not yet exported — that is the
    /// [`MetricsSnapshot::inflight`] gauge); after shutdown they are
    /// exact.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            per_shard: Vec::with_capacity(self.shards.len()),
            ..MetricsSnapshot::default()
        };
        for b in self.shards.iter() {
            let sh = ShardSnapshot {
                accepted: b.accepted.load(Relaxed),
                shed: b.shed.load(Relaxed),
                exported: b.exported.load(Relaxed),
                dropped: b.dropped.load(Relaxed),
            };
            s.accepted += sh.accepted;
            s.shed += sh.shed;
            s.exported += sh.exported;
            s.dropped += sh.dropped;
            s.per_shard.push(sh);
        }
        s.export_failures = self.global.export_failures.load(Relaxed);
        s.retries = self.global.retries.load(Relaxed);
        s.flushes = self.global.flushes.load(Relaxed);
        s.deadline_flushes = self.global.deadline_flushes.load(Relaxed);
        s.accepted_ck = self.global.accepted_ck.load(Relaxed);
        s.exported_ck = self.global.exported_ck.load(Relaxed);
        s.dropped_ck = self.global.dropped_ck.load(Relaxed);
        s
    }
}

/// One shard's slice of a [`MetricsSnapshot`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Spans this shard's lane accepted.
    pub accepted: u64,
    /// Spans shed at this shard's ingest edge.
    pub shed: u64,
    /// Accepted spans of this shard confirmed exported.
    pub exported: u64,
    /// Accepted spans of this shard dropped by the overflow policy.
    pub dropped: u64,
}

/// A relaxed point-in-time read of every counter, plus the derived
/// conservation views.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Total spans accepted into lanes.
    pub accepted: u64,
    /// Total spans shed at ingest (never accepted; not a loss of accepted
    /// data).
    pub shed: u64,
    /// Total spans confirmed exported.
    pub exported: u64,
    /// Total accepted spans dropped after retry exhaustion.
    pub dropped: u64,
    /// Failed export attempts.
    pub export_failures: u64,
    /// Scheduled re-attempts.
    pub retries: u64,
    /// Batches flushed to the exporter stage.
    pub flushes: u64,
    /// Flushes forced by the deadline.
    pub deadline_flushes: u64,
    /// XOR checksum over accepted spans.
    pub accepted_ck: u64,
    /// XOR checksum over exported spans.
    pub exported_ck: u64,
    /// XOR checksum over dropped spans.
    pub dropped_ck: u64,
    /// Per-shard breakdown, index = shard.
    pub per_shard: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Accepted spans still somewhere inside the pipeline (lane backlog,
    /// an open batch, or the exporter stage). Derived, and therefore
    /// momentarily stale mid-flight; exactly 0 after a clean shutdown.
    pub fn inflight(&self) -> u64 {
        self.accepted
            .saturating_sub(self.exported)
            .saturating_sub(self.dropped)
    }

    /// The conservation identity the pipeline promises after shutdown:
    /// every accepted span was exported exactly once or counted dropped,
    /// by count *and* content checksum.
    pub fn conserved(&self) -> bool {
        self.accepted == self.exported + self.dropped
            && self.accepted_ck == self.exported_ck ^ self.dropped_ck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identities() {
        let m = Metrics::new(2);
        let a = Span::new(1, 10);
        let b = Span::new(1, 11);
        let c = Span::new(2, 12);
        m.on_accept(0, &a);
        m.on_accept(0, &b);
        m.on_accept(1, &c);
        m.on_shed(1);
        m.on_export(0, &a);
        m.on_drop(0, &b);
        m.on_export(1, &c);
        let s = m.snapshot();
        assert_eq!((s.accepted, s.shed, s.exported, s.dropped), (3, 1, 2, 1));
        assert_eq!(s.inflight(), 0);
        assert!(s.conserved(), "count and checksum identities hold");
        assert_eq!(s.per_shard[0].accepted, 2);
        assert_eq!(s.per_shard[1].shed, 1);
    }

    #[test]
    fn losing_a_span_breaks_conservation() {
        let m = Metrics::new(1);
        let a = Span::new(3, 1);
        let b = Span::new(3, 2);
        m.on_accept(0, &a);
        m.on_accept(0, &b);
        m.on_export(0, &a);
        let s = m.snapshot();
        assert_eq!(s.inflight(), 1, "b is unaccounted");
        assert!(!s.conserved());
    }

    #[test]
    fn exporting_wrong_content_breaks_checksum_even_with_matching_counts() {
        let m = Metrics::new(1);
        let a = Span::new(4, 1);
        m.on_accept(0, &a);
        m.on_export(0, &Span::new(4, 2)); // right count, wrong span
        let s = m.snapshot();
        assert_eq!(s.accepted, s.exported);
        assert!(!s.conserved(), "checksum must catch content corruption");
    }
}
