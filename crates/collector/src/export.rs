//! The export edge of the pipeline: the [`Exporter`] sink trait, the
//! [`FaultInjector`] seam the tests and the soak binary share, and the
//! bounded-retry [`RetryPolicy`] that decides how hard the exporter stage
//! fights a failing sink before invoking the overflow policy.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;
use std::time::Duration;

use crate::span::Span;

/// An export attempt failed. Carries no payload: the exporter stage still
/// owns the batch and decides (via [`RetryPolicy`]) whether to retry it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExportError;

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("export attempt failed")
    }
}

impl std::error::Error for ExportError {}

/// The terminal sink for flushed batches. Implementations are owned by
/// the single exporter thread, so `&mut self` suffices — no internal
/// synchronization required.
pub trait Exporter: Send {
    /// Exports one batch. An `Err` means *nothing* from `spans` was
    /// persisted — the stage retries or drops the whole batch; partial
    /// exports are the implementation's responsibility to avoid.
    fn export(&mut self, spans: &[Span]) -> Result<(), ExportError>;
}

/// Accumulates every exported span in memory. The conservation tests
/// compare its contents against the ingest-side oracle.
#[derive(Debug, Default)]
pub struct VecExporter {
    /// Every span exported so far, in export order.
    pub spans: Vec<Span>,
}

impl Exporter for VecExporter {
    fn export(&mut self, spans: &[Span]) -> Result<(), ExportError> {
        self.spans.extend_from_slice(spans);
        Ok(())
    }
}

/// Discards everything (always succeeds). The soak binary uses it so the
/// measured ceiling is the pipeline's, not an allocator's.
#[derive(Debug, Default)]
pub struct NullExporter;

impl Exporter for NullExporter {
    fn export(&mut self, _spans: &[Span]) -> Result<(), ExportError> {
        Ok(())
    }
}

/// What an injected fault does to the export attempt about to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Let the attempt run normally.
    Proceed,
    /// Fail the attempt without calling the exporter (counts as an
    /// export failure; the batch follows the retry path).
    Fail,
    /// Stall the exporter thread for the duration, then run the attempt.
    /// Models a slow backend: upstream keeps batching, the export queue
    /// absorbs the bubble, and deadline flushes keep firing.
    Stall(Duration),
}

/// Decides, per export *attempt*, whether to inject a fault. Shared by
/// the integration tests, the DST model, and `collector-soak` so a fault
/// profile proven correct under the schedule explorer is byte-identical
/// to the one the soak run stresses at full speed.
///
/// Injectors observe a global attempt counter (retries included), so
/// `FailEvery(n)` with `n >= 2` always lets a retried batch through —
/// deterministic zero-drop profiles for the loss tests — while `n == 1`
/// fails every attempt and exercises the overflow drop path.
pub trait FaultInjector: Send + Sync {
    /// Called immediately before each export attempt.
    fn before_attempt(&self) -> FaultAction;
}

/// Never injects anything.
#[derive(Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn before_attempt(&self) -> FaultAction {
        FaultAction::Proceed
    }
}

/// Fails every `n`-th attempt (1-based: the `n`-th, `2n`-th, ... attempts
/// fail). `FailEvery::new(1)` fails everything.
#[derive(Debug)]
pub struct FailEvery {
    n: u64,
    attempts: AtomicU64,
}

impl FailEvery {
    /// Fail every `n`-th export attempt.
    ///
    /// # Panics
    ///
    /// If `n == 0`.
    pub fn new(n: u64) -> FailEvery {
        assert!(n > 0, "FailEvery(0) is meaningless");
        FailEvery {
            n,
            attempts: AtomicU64::new(0),
        }
    }
}

impl FaultInjector for FailEvery {
    fn before_attempt(&self) -> FaultAction {
        // Relaxed: the counter only sequences faults against attempts on
        // the same (single) exporter thread; cross-thread order is moot.
        let k = self.attempts.fetch_add(1, Relaxed) + 1;
        if k.is_multiple_of(self.n) {
            FaultAction::Fail
        } else {
            FaultAction::Proceed
        }
    }
}

/// Stalls every `every`-th attempt for `dur` before letting it proceed.
#[derive(Debug)]
pub struct StallFor {
    every: u64,
    dur: Duration,
    attempts: AtomicU64,
}

impl StallFor {
    /// Stall every `every`-th export attempt for `dur`.
    ///
    /// # Panics
    ///
    /// If `every == 0`.
    pub fn new(every: u64, dur: Duration) -> StallFor {
        assert!(every > 0, "StallFor(0, _) is meaningless");
        StallFor {
            every,
            dur,
            attempts: AtomicU64::new(0),
        }
    }
}

impl FaultInjector for StallFor {
    fn before_attempt(&self) -> FaultAction {
        let k = self.attempts.fetch_add(1, Relaxed) + 1;
        if k.is_multiple_of(self.every) {
            FaultAction::Stall(self.dur)
        } else {
            FaultAction::Proceed
        }
    }
}

/// How the exporter stage responds to a failed attempt before giving the
/// batch to the overflow policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per batch, the first one included. `1` means no
    /// retries; `0` is rounded up to `1` (a batch always gets one try).
    pub max_attempts: u32,
    /// Sleep between attempts (a scheduling yield under DST). Constant,
    /// not exponential: the retry budget is bounded and small, and a
    /// deterministic delay keeps soak drop-rate numbers reproducible.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_micros(50),
        }
    }
}

/// What happens to a batch once retries are exhausted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Count the batch's spans as dropped (per-shard `dropped` counters
    /// plus the dropped checksum) and move on. Conservation still holds:
    /// dropped spans are accounted, not lost.
    #[default]
    Drop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_every_is_one_based_and_periodic() {
        let f = FailEvery::new(3);
        let pattern: Vec<bool> = (0..7).map(|_| f.before_attempt() == FaultAction::Fail).collect();
        assert_eq!(pattern, [false, false, true, false, false, true, false]);
    }

    #[test]
    fn fail_every_one_fails_everything() {
        let f = FailEvery::new(1);
        assert!((0..4).all(|_| f.before_attempt() == FaultAction::Fail));
    }

    #[test]
    fn stall_for_periodic() {
        let d = Duration::from_millis(5);
        let s = StallFor::new(2, d);
        assert_eq!(s.before_attempt(), FaultAction::Proceed);
        assert_eq!(s.before_attempt(), FaultAction::Stall(d));
        assert_eq!(s.before_attempt(), FaultAction::Proceed);
        assert_eq!(s.before_attempt(), FaultAction::Stall(d));
    }
}
