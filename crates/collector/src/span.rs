//! The unit of telemetry the collector moves: a completed span.

/// A completed telemetry span, shaped like the wire records sharded
/// tracing systems batch toward a backend: plain-old-data, 32 bytes, no
/// heap — cheap enough that the ingest lanes move it by value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Trace the span belongs to; also the sharding key (see
    /// [`crate::SpanSender::submit`]).
    pub trace: u64,
    /// Span id, unique within the trace.
    pub id: u64,
    /// Start timestamp, nanoseconds since an arbitrary epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

impl Span {
    /// A span with the given identity and zeroed timestamps — the shape
    /// tests and models use when only conservation is under scrutiny.
    pub fn new(trace: u64, id: u64) -> Span {
        Span {
            trace,
            id,
            start_ns: 0,
            dur_ns: 0,
        }
    }

    /// Order-independent conservation word: the metrics XOR this into the
    /// accepted checksum at ingest and into the exported (or dropped)
    /// checksum on the way out, so `accepted == exported ^ dropped` holds
    /// over *content*, not just counts. The multiply-mix (splitmix-style
    /// finalizer constants) keeps structured ids — sequential `id`s with a
    /// shared `trace` — from cancelling each other under XOR.
    pub fn checksum(&self) -> u64 {
        let mut x = self
            .trace
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(self.id)
            .wrapping_add(self.start_ns.rotate_left(17))
            .wrapping_add(self.dur_ns.rotate_left(41));
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_content_sensitive() {
        let a = Span::new(1, 2);
        let b = Span::new(2, 1);
        assert_ne!(a.checksum(), b.checksum(), "fields must not commute");
        assert_eq!(a.checksum(), Span::new(1, 2).checksum(), "deterministic");
    }

    #[test]
    fn sequential_ids_do_not_cancel() {
        // XOR of mixed consecutive ids must not collapse to a pattern a
        // lost-pair bug would also produce.
        let x: u64 = (0..64).map(|i| Span::new(7, i).checksum()).fold(0, |a, c| a ^ c);
        let y: u64 = (0..64)
            .filter(|i| *i != 13 && *i != 14)
            .map(|i| Span::new(7, i).checksum())
            .fold(0, |a, c| a ^ c);
        assert_ne!(x, y, "dropping a pair must change the aggregate");
    }
}
