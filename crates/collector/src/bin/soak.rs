//! `collector-soak`: drive the span-collector pipeline at (or past) a
//! target rate under an optional fault profile, and report sustained
//! throughput, shed/drop rates, and flush-latency percentiles.
//!
//! The process exits non-zero if conservation is violated (an accepted
//! span neither exported nor counted dropped) — and, under
//! `--require-zero-drops`, if any accepted span was dropped — so CI can
//! gate on the binary directly.
//!
//! ```text
//! collector-soak --threads 8 --duration-ms 2000 --fault fail-every=7
//! ```

use std::process::ExitCode;
use std::time::Duration;

use collector::{run_soak, FaultProfile, ShedPolicy, SoakCfg};
use harness::stats::fmt_ns;

const USAGE: &str = "\
collector-soak: soak/fault harness for the span-collector pipeline

  --threads N          producer threads (default 4)
  --rate R             aggregate target spans/s; 0 = flat out (default)
  --duration-ms D      run length in milliseconds (default 1000)
  --shards S           ingest shards / lanes (default 4)
  --workers W          batching workers (default 2)
  --batch-max B        spans per batch (default 128)
  --flush-after-us U   deadline flush, microseconds (default 5000)
  --lane-order O       per-producer lane ring = 2^O slots (default 10)
  --shed shed|block    ingest overload policy (default shed)
  --fault PROFILE      none | fail-every=N | stall=EVERY:US (default none)
  --require-zero-drops exit non-zero if any accepted span was dropped
  --help               this text
";

fn parse_fault(s: &str) -> Result<FaultProfile, String> {
    if s == "none" {
        return Ok(FaultProfile::None);
    }
    if let Some(n) = s.strip_prefix("fail-every=") {
        let n: u64 = n.parse().map_err(|_| format!("bad fail-every count {n:?}"))?;
        if n == 0 {
            return Err("fail-every=0 is meaningless".into());
        }
        return Ok(FaultProfile::FailEvery(n));
    }
    if let Some(rest) = s.strip_prefix("stall=") {
        let (every, us) = rest
            .split_once(':')
            .ok_or_else(|| format!("stall wants EVERY:US, got {rest:?}"))?;
        let every: u64 = every.parse().map_err(|_| format!("bad stall period {every:?}"))?;
        let us: u64 = us.parse().map_err(|_| format!("bad stall micros {us:?}"))?;
        if every == 0 {
            return Err("stall=0:_ is meaningless".into());
        }
        return Ok(FaultProfile::StallFor {
            every,
            dur: Duration::from_micros(us),
        });
    }
    Err(format!("unknown fault profile {s:?} (try --help)"))
}

fn parse_args() -> Result<(SoakCfg, bool), String> {
    let mut cfg = SoakCfg::default();
    let mut require_zero_drops = false;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} wants a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => cfg.producers = next(&mut args, "--threads")?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--rate" => {
                let r: u64 = next(&mut args, "--rate")?.parse().map_err(|e| format!("--rate: {e}"))?;
                cfg.rate = (r > 0).then_some(r);
            }
            "--duration-ms" => {
                cfg.duration = Duration::from_millis(
                    next(&mut args, "--duration-ms")?.parse().map_err(|e| format!("--duration-ms: {e}"))?,
                )
            }
            "--shards" => cfg.pipeline.shards = next(&mut args, "--shards")?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--workers" => cfg.pipeline.workers = next(&mut args, "--workers")?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--batch-max" => cfg.pipeline.batch_max = next(&mut args, "--batch-max")?.parse().map_err(|e| format!("--batch-max: {e}"))?,
            "--flush-after-us" => {
                cfg.pipeline.flush_after = Duration::from_micros(
                    next(&mut args, "--flush-after-us")?.parse().map_err(|e| format!("--flush-after-us: {e}"))?,
                )
            }
            "--lane-order" => cfg.pipeline.lane_order = next(&mut args, "--lane-order")?.parse().map_err(|e| format!("--lane-order: {e}"))?,
            "--shed" => {
                cfg.pipeline.shed = match next(&mut args, "--shed")?.as_str() {
                    "shed" => ShedPolicy::Shed,
                    "block" => ShedPolicy::Block,
                    other => return Err(format!("unknown shed policy {other:?}")),
                }
            }
            "--fault" => cfg.fault = parse_fault(&next(&mut args, "--fault")?)?,
            "--require-zero-drops" => require_zero_drops = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    // Producers declared per lane must cover the actual thread count so
    // everyone gets a seated ring (see CollectorConfig::producers).
    cfg.pipeline.producers = cfg.producers.max(1);
    Ok((cfg, require_zero_drops))
}

fn main() -> ExitCode {
    let (cfg, require_zero_drops) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("collector-soak: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!(
        "# collector-soak: threads={} rate={} duration={:?} shards={} workers={} \
         batch_max={} flush_after={:?} shed={:?} fault={} cores={} dwcas={}",
        cfg.producers,
        cfg.rate.map_or("max".into(), |r| r.to_string()),
        cfg.duration,
        cfg.pipeline.shards,
        cfg.pipeline.workers,
        cfg.pipeline.batch_max,
        cfg.pipeline.flush_after,
        cfg.pipeline.shed,
        cfg.fault,
        cores,
        if cfg!(feature = "portable") { "portable" } else { "hardware" },
    );

    let report = run_soak(&cfg);
    let m = &report.metrics;
    println!(
        "submitted={} accepted={} shed={} exported={} dropped={} inflight={}",
        report.submitted,
        m.accepted,
        m.shed,
        m.exported,
        m.dropped,
        m.inflight()
    );
    println!(
        "flushes={} deadline_flushes={} export_failures={} retries={}",
        m.flushes, m.deadline_flushes, m.export_failures, m.retries
    );
    let l = &report.flush_latency;
    println!(
        "throughput={:.0} spans/s shed_rate={:.4} drop_rate={:.6} flush_latency p50={} p99={} max={} (n={})",
        report.throughput(),
        report.shed_rate(),
        report.drop_rate(),
        fmt_ns(l.p50_ns as f64),
        fmt_ns(l.p99_ns as f64),
        fmt_ns(l.max_ns as f64),
        l.n
    );

    if !report.conserved() {
        eprintln!(
            "CONSERVATION VIOLATED: accepted={} (ck {:#x}) != exported={} (ck {:#x}) + dropped={} (ck {:#x})",
            m.accepted, m.accepted_ck, m.exported, m.exported_ck, m.dropped, m.dropped_ck
        );
        return ExitCode::FAILURE;
    }
    println!("conserved=true");
    if require_zero_drops && m.dropped > 0 {
        eprintln!("ZERO-DROP REQUIREMENT VIOLATED: {} accepted spans dropped", m.dropped);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
