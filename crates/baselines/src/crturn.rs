//! CRTurn — Ramalhete & Correia's turn queue (PPoPP '17 poster + tech
//! report), the "truly wait-free queue with wait-free memory reclamation"
//! baseline of the wCQ evaluation.
//!
//! Reproduction scope (see `DESIGN.md` §3.4): the **enqueue** side is the
//! faithful turn-based algorithm — a thread publishes its node in
//! `enqueuers[tid]` and everyone links pending nodes in turn order after the
//! current tail, which bounds every enqueue by `maxThreads` rounds
//! (wait-free). The **dequeue** side uses the same node-claiming idea
//! (`deqTid` CAS on the node after head) but without the `deqself`/`deqhelp`
//! turn handshake, making it lock-free rather than wait-free. The
//! performance profile — one CAS-claim plus one head CAS per dequeue on a
//! shared linked list, hazard pointers for reclamation — is the profile the
//! paper's figures show for CRTurn (slowest truly-nonblocking contender).
//!
//! Values are `u64`; nodes are reclaimed with hazard pointers.

use hazard::{Domain, HpHandle};
use std::ptr;
use std::sync::atomic::{AtomicI64, Ordering::SeqCst};
// See msqueue.rs: must match hazard's `protect` signature under wcq_dst.
#[cfg(not(wcq_dst))]
use std::sync::atomic::AtomicPtr;
#[cfg(wcq_dst)]
use shuttle_lite::atomic::AtomicPtr;

const IDX_NONE: i64 = -1;

struct Node {
    item: u64,
    enq_tid: usize,
    deq_tid: AtomicI64,
    next: AtomicPtr<Node>,
}

impl Node {
    fn boxed(item: u64, enq_tid: usize) -> *mut Node {
        Box::into_raw(Box::new(Node {
            item,
            enq_tid,
            deq_tid: AtomicI64::new(IDX_NONE),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// CRTurn-style queue of `u64` values.
pub struct CrTurnQueue {
    head: AtomicPtr<Node>,
    tail: AtomicPtr<Node>,
    enqueuers: Box<[AtomicPtr<Node>]>,
    tid_slots: Box<[std::sync::atomic::AtomicBool]>,
    domain: Domain,
    max_threads: usize,
}

// SAFETY: shared state is atomics; nodes reclaimed through HP.
unsafe impl Send for CrTurnQueue {}
unsafe impl Sync for CrTurnQueue {}

impl CrTurnQueue {
    /// Creates an empty queue admitting `max_threads` handles.
    pub fn new(max_threads: usize) -> Self {
        let sentinel = Node::boxed(0, 0);
        CrTurnQueue {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            enqueuers: (0..max_threads)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
            tid_slots: (0..max_threads)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect(),
            domain: Domain::new(max_threads),
            max_threads,
        }
    }

    /// Registers the calling thread, claiming a turn-order thread id.
    pub fn register(&self) -> Option<CrTurnHandle<'_>> {
        let hp = self.domain.register()?;
        let tid = self.tid_slots.iter().position(|s| {
            s.compare_exchange(false, true, SeqCst, SeqCst).is_ok()
        })?;
        Some(CrTurnHandle { q: self, hp, tid })
    }
}

impl Drop for CrTurnQueue {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in drop.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to a [`CrTurnQueue`].
pub struct CrTurnHandle<'q> {
    q: &'q CrTurnQueue,
    hp: HpHandle<'q>,
    tid: usize,
}

impl CrTurnHandle<'_> {
    fn tid(&self) -> usize {
        self.tid
    }

    /// Turn-based enqueue. The loop runs until the node's request slot is
    /// cleared, which the protocol guarantees happens when the node becomes
    /// the tail (clear-before-link ordering); the turn discipline bounds the
    /// number of *productive* rounds by `maxThreads`, with extra iterations
    /// only consumed by tail-validation retries.
    pub fn enqueue(&mut self, v: u64) {
        let tid = self.tid();
        let my_node = Node::boxed(v, tid);
        self.q.enqueuers[tid].store(my_node, SeqCst);
        loop {
            if self.q.enqueuers[tid].load(SeqCst).is_null() {
                self.hp.clear_slot(0);
                return; // our node was linked and its request cleared
            }
            let ltail = self.hp.protect(0, &self.q.tail);
            if ltail != self.q.tail.load(SeqCst) {
                continue;
            }
            // SAFETY: ltail protected.
            let ltail_enq_tid = unsafe { (*ltail).enq_tid };
            // Step 1: the tail node is linked by definition — clear its
            // still-published request so it can never be linked twice.
            if self.q.enqueuers[ltail_enq_tid].load(SeqCst) == ltail {
                let _ = self.q.enqueuers[ltail_enq_tid].compare_exchange(
                    ltail,
                    ptr::null_mut(),
                    SeqCst,
                    SeqCst,
                );
            }
            // Step 2: link the next pending request in turn order.
            for j in 1..=self.q.max_threads {
                let k = (ltail_enq_tid + j) % self.q.max_threads;
                let pending = self.q.enqueuers[k].load(SeqCst);
                if pending.is_null() {
                    continue;
                }
                // SAFETY: ltail protected; `pending` is only *written as a
                // pointer value*, never dereferenced. The clear-before-link
                // ordering (step 1 precedes any link after the node, under
                // SeqCst) guarantees a slot read after tail passed a node
                // reads null, so a recycled node can never be re-linked.
                let _ = unsafe {
                    (*ltail)
                        .next
                        .compare_exchange(ptr::null_mut(), pending, SeqCst, SeqCst)
                };
                break;
            }
            // Step 3: swing the tail.
            // SAFETY: ltail protected.
            let lnext = unsafe { (*ltail).next.load(SeqCst) };
            if !lnext.is_null() {
                let _ = self.q.tail.compare_exchange(ltail, lnext, SeqCst, SeqCst);
            }
        }
    }

    /// Lock-free dequeue via `deqTid` claiming; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        let tid = self.tid();
        loop {
            let lhead = self.hp.protect(0, &self.q.head);
            if lhead != self.q.head.load(SeqCst) {
                continue;
            }
            // SAFETY: lhead protected.
            let lnext = self.hp.protect(1, unsafe { &(*lhead).next });
            if lhead != self.q.head.load(SeqCst) {
                continue;
            }
            if lnext.is_null() {
                self.hp.clear();
                return None; // empty
            }
            // Keep head ≤ tail: if the tail lags at lhead, help it first so
            // dequeuers never advance head past tail (which would expose
            // freed nodes to enqueue helpers).
            if lhead == self.q.tail.load(SeqCst) {
                let _ = self.q.tail.compare_exchange(lhead, lnext, SeqCst, SeqCst);
            }
            // Claim the node after head.
            // SAFETY: lnext protected.
            if unsafe {
                (*lnext)
                    .deq_tid
                    .compare_exchange(IDX_NONE, tid as i64, SeqCst, SeqCst)
                    .is_ok()
            } {
                // SAFETY: lnext protected; we own its item now.
                let item = unsafe { (*lnext).item };
                if self
                    .q
                    .head
                    .compare_exchange(lhead, lnext, SeqCst, SeqCst)
                    .is_ok()
                {
                    self.hp.clear();
                    // SAFETY: lhead unlinked (head moved past it) and its
                    // enqueuers slot was cleared before it was ever linked
                    // deeper into the list.
                    unsafe { self.hp.retire(lhead) };
                } else {
                    self.hp.clear();
                }
                return Some(item);
            }
            // Node already claimed: help advance head and retry.
            if self
                .q
                .head
                .compare_exchange(lhead, lnext, SeqCst, SeqCst)
                .is_ok()
            {
                self.hp.clear();
                // SAFETY: as above.
                unsafe { self.hp.retire(lhead) };
            }
        }
    }
}

impl Drop for CrTurnHandle<'_> {
    fn drop(&mut self) {
        self.q.tid_slots[self.tid].store(false, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn fifo_single_thread() {
        let q = CrTurnQueue::new(2);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn helping_links_peer_nodes() {
        // Two threads enqueue concurrently; turn order forces each to link
        // the other's pending node at some point.
        let q = Arc::new(CrTurnQueue::new(2));
        let mut hs = Vec::new();
        for t in 0..2u64 {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..5000 {
                    h.enqueue(t << 32 | i);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let mut h = q.register().unwrap();
        let mut n = 0;
        let mut last = [-1i64; 2];
        while let Some(v) = h.dequeue() {
            let (p, i) = ((v >> 32) as usize, (v & 0xffff_ffff) as i64);
            assert!(i > last[p], "per-producer FIFO violated");
            last[p] = i;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    fn mpmc_exact_delivery() {
        let q = Arc::new(CrTurnQueue::new(8));
        let done = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..4000 {
                        h.enqueue(p << 32 | i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    let mut local = Vec::new();
                    loop {
                        match h.dequeue() {
                            Some(v) => local.push(v),
                            None if done.load(SeqCst) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().extend(local);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let got = sink.lock().unwrap();
        assert_eq!(got.len(), 12_000);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 12_000);
    }
}
