//! CCQueue — the CC-Synch combining queue of Fatourou & Kallimanis
//! (PPoPP '12), applied to a sequential FIFO queue.
//!
//! "CCQueue is a combining queue, which is not lock-free but still achieves
//! relatively good performance." (§6)
//!
//! CC-Synch serializes operations through a combiner: each thread publishes
//! its request in a node appended to a combining list (one `SWAP`), then
//! either spins until a combiner executes it or becomes the combiner itself
//! and executes up to `COMBINE_LIMIT` pending requests against the
//! sequential queue.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicU8, Ordering::SeqCst};
use std::sync::Mutex;

/// Max requests a single combiner executes before handing off (the
/// algorithm's `H` parameter).
const COMBINE_LIMIT: usize = 128;

const OP_NONE: u64 = 0;
const OP_ENQ: u64 = 1;
const OP_DEQ: u64 = 2;

const ST_WAIT: u8 = 0;
const ST_DONE: u8 = 1;
const ST_COMBINER: u8 = 2;

#[repr(align(128))]
struct CcNode {
    op: AtomicU64,
    arg: AtomicU64,
    ret: AtomicU64,
    ret_some: AtomicU64,
    state: AtomicU8,
    next: AtomicPtr<CcNode>,
}

impl CcNode {
    fn boxed() -> *mut CcNode {
        Box::into_raw(Box::new(CcNode {
            op: AtomicU64::new(OP_NONE),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
            ret_some: AtomicU64::new(0),
            state: AtomicU8::new(ST_COMBINER),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// CC-Synch combining FIFO queue of `u64` values.
pub struct CcQueue {
    /// Tail of the combining list; always points at the current sentinel.
    clist_tail: AtomicPtr<CcNode>,
    /// The sequential queue, touched only by the current combiner.
    inner: UnsafeCell<VecDeque<u64>>,
    /// All nodes ever allocated, so `Drop` can free them (nodes circulate
    /// between threads and the list; individual ownership is not tractable).
    arena: Mutex<Vec<*mut CcNode>>,
}

// SAFETY: `inner` is only accessed by the unique combiner (the CC-Synch
// protocol guarantees mutual exclusion); everything else is atomic.
unsafe impl Send for CcQueue {}
unsafe impl Sync for CcQueue {}

impl CcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        // The initial sentinel's ST_COMBINER state is the available baton.
        let sentinel = CcNode::boxed();
        CcQueue {
            clist_tail: AtomicPtr::new(sentinel),
            inner: UnsafeCell::new(VecDeque::with_capacity(1024)),
            arena: Mutex::new(vec![sentinel]),
        }
    }

    /// Registers the calling thread (allocates its spare node).
    pub fn register(&self) -> CcHandle<'_> {
        let spare = CcNode::boxed();
        self.arena.lock().unwrap().push(spare);
        CcHandle { q: self, spare }
    }

    /// Executes `op(arg)` through the combining protocol.
    fn combine(&self, my_spare: &mut *mut CcNode, op: u64, arg: u64) -> Option<u64> {
        let next_node = *my_spare;
        // SAFETY: we own the spare node until it is swapped into the list.
        unsafe {
            (*next_node).next.store(ptr::null_mut(), SeqCst);
            (*next_node).state.store(ST_WAIT, SeqCst);
            (*next_node).op.store(OP_NONE, SeqCst);
        }
        let cur = self.clist_tail.swap(next_node, SeqCst);
        // SAFETY: `cur` was the sentinel; it becomes our request node and we
        // are its only writer until `next` is published below.
        unsafe {
            (*cur).op.store(op, SeqCst);
            (*cur).arg.store(arg, SeqCst);
            (*cur).next.store(next_node, SeqCst);
        }
        *my_spare = cur; // the request node becomes the next op's spare
        // Spin until executed or until we inherit the combiner baton.
        // Spin-then-yield: on oversubscribed hosts a pure spin starves the
        // combiner of CPU (CC-Synch assumes a core per thread).
        let mut spins = 0u32;
        loop {
            // SAFETY: `cur` stays valid (arena-owned).
            match unsafe { (*cur).state.load(SeqCst) } {
                ST_WAIT => {
                    spins += 1;
                    if spins > 128 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
                ST_DONE => {
                    let (some, ret) =
                        // SAFETY: `cur` is arena-owned; the combiner
                        // published both results before storing ST_DONE.
                        unsafe { ((*cur).ret_some.load(SeqCst), (*cur).ret.load(SeqCst)) };
                    return (some == 1).then_some(ret);
                }
                _ => break, // ST_COMBINER: our turn to combine
            }
        }
        // Combiner role: execute requests from `cur` onwards until the list
        // runs dry or the combine limit is reached.
        // SAFETY: the combiner has exclusive access to `inner`.
        let inner = unsafe { &mut *self.inner.get() };
        let mut node = cur;
        let mut my_result = None;
        let mut executed = 0usize;
        loop {
            // SAFETY: nodes are arena-owned; `next` was published before the
            // requester started spinning.
            let next = unsafe { (*node).next.load(SeqCst) };
            if next.is_null() || executed >= COMBINE_LIMIT {
                break;
            }
            // SAFETY: `node` is arena-owned; its requester published
            // op/arg before linking itself and is now spinning on
            // `state`, so the combiner is the only other accessor.
            let (op_k, arg_k) = unsafe { ((*node).op.load(SeqCst), (*node).arg.load(SeqCst)) };
            let res = match op_k {
                OP_ENQ => {
                    inner.push_back(arg_k);
                    None
                }
                OP_DEQ => inner.pop_front(),
                _ => None,
            };
            executed += 1;
            if node == cur {
                my_result = res;
            } else {
                // Publish the result and release the requester.
                // SAFETY: arena-owned node whose requester reads the
                // results only after observing the ST_DONE store below.
                unsafe {
                    (*node).ret_some.store(res.is_some() as u64, SeqCst);
                    (*node).ret.store(res.unwrap_or(0), SeqCst);
                    (*node).state.store(ST_DONE, SeqCst);
                }
            }
            node = next;
        }
        // Hand the baton to whoever waits on `node` (possibly nobody yet —
        // the next arriving thread will find ST_COMBINER and take over).
        // SAFETY: `node` is arena-owned and stays allocated for the
        // queue's lifetime; a state store is always in-bounds.
        unsafe { (*node).state.store(ST_COMBINER, SeqCst) };
        my_result
    }
}

impl Default for CcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CcQueue {
    fn drop(&mut self) {
        for &p in self.arena.lock().unwrap().iter() {
            // SAFETY: exclusive access in drop; arena holds every node once.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

/// Per-thread handle to a [`CcQueue`] (owns the thread's spare node).
pub struct CcHandle<'q> {
    q: &'q CcQueue,
    spare: *mut CcNode,
}

// SAFETY: the spare node pointer is owned by this handle exclusively.
unsafe impl Send for CcHandle<'_> {}

impl CcHandle<'_> {
    /// Enqueues through the combiner.
    pub fn enqueue(&mut self, v: u64) {
        let _ = self.q.combine(&mut self.spare, OP_ENQ, v);
    }

    /// Dequeues through the combiner; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        self.q.combine(&mut self.spare, OP_DEQ, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn fifo_single_thread() {
        let q = CcQueue::new();
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn combiner_baton_passes_between_threads() {
        let q = Arc::new(CcQueue::new());
        let mut hs = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            hs.push(std::thread::spawn(move || {
                let mut h = q.register();
                for i in 0..2000 {
                    h.enqueue(t << 32 | i);
                    h.dequeue().expect("just enqueued, queue can't be empty");
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
    }

    #[test]
    fn mpmc_exact_delivery() {
        let q = Arc::new(CcQueue::new());
        let done = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(StdMutex::new(Vec::new()));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register();
                    for i in 0..3000 {
                        h.enqueue(p << 32 | i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut h = q.register();
                    let mut local = Vec::new();
                    loop {
                        match h.dequeue() {
                            Some(v) => local.push(v),
                            None if done.load(SeqCst) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().extend(local);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let got = sink.lock().unwrap();
        assert_eq!(got.len(), 9000);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 9000);
    }
}
