//! FAA — the fetch-and-add pseudo-queue.
//!
//! "FAA (fetch-and-add), which is not a true queue algorithm; it simply
//! atomically increments Head and Tail when calling Dequeue and Enqueue
//! respectively. FAA is only shown to provide a theoretical performance
//! 'upper bound' for F&A-based queues." (§6)

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// The F&A throughput upper-bound pseudo-queue.
///
/// `enqueue` bumps `Tail`, `dequeue` bumps `Head` and "returns" the ticket.
/// No values are stored; dequeue reports empty when `Head` catches `Tail`,
/// which keeps the empty-dequeue benchmark honest.
#[derive(Debug, Default)]
pub struct FaaQueue {
    tail: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
}

impl FaaQueue {
    /// Creates the pseudo-queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Enqueues" by incrementing `Tail`.
    #[inline]
    pub fn enqueue(&self, _v: u64) {
        self.tail.fetch_add(1, SeqCst);
    }

    /// "Dequeues" by incrementing `Head`; `None` when no ticket is left.
    #[inline]
    pub fn dequeue(&self) -> Option<u64> {
        // Still pays the RMW even when empty — the reason FAA performs
        // poorly in the paper's empty-dequeue test (Fig. 11a).
        let h = self.head.fetch_add(1, SeqCst);
        if h < self.tail.load(SeqCst) {
            Some(h)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_tickets() {
        let q = FaaQueue::new();
        assert_eq!(q.dequeue(), None);
        q.enqueue(10);
        q.enqueue(20);
        // Note: the first dequeue after the empty probe gets ticket 1.
        assert!(q.dequeue().is_some());
        assert_eq!(q.dequeue(), None, "ticket 2 >= tail 2");
    }

    #[test]
    fn concurrent_increments_sum() {
        let q = std::sync::Arc::new(FaaQueue::new());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        q.enqueue(1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(q.tail.load(SeqCst), 40_000);
    }
}
