//! LCRQ — Morrison & Afek's fast concurrent queue (PPoPP '13).
//!
//! A linked list (Michael & Scott style) of CRQ ring buffers. Each CRQ uses
//! F&A on `Head`/`Tail` and a double-width CAS per cell `{val, idx}`. CRQs
//! are livelock-prone, so a starving enqueuer *closes* its ring and appends
//! a fresh one to the list — the behaviour responsible for LCRQ's high
//! memory usage in the paper's Fig. 10a (each ring wants ≥ 2^12 cells for
//! performance, and closed rings are wasted space until drained).
//!
//! Values are `u64` below `u64::MAX` (the all-ones word is the cell-empty
//! sentinel, as in the original implementation).

use crossbeam_utils::CachePadded;
use dwcas::AtomicPair;
use hazard::{Domain, HpHandle};
use std::ptr;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
// See msqueue.rs: must match hazard's `protect` signature under wcq_dst.
#[cfg(not(wcq_dst))]
use std::sync::atomic::AtomicPtr;
#[cfg(wcq_dst)]
use shuttle_lite::atomic::AtomicPtr;

/// Cell-empty sentinel value.
const EMPTY: u64 = u64::MAX;
/// Closed bit in a CRQ's tail counter.
const CLOSED: u64 = 1 << 63;
/// Unsafe bit in a cell's index word.
const UNSAFE: u64 = 1 << 63;
/// An enqueuer closes its ring after this many failed cell attempts even if
/// the ring is not provably full (starvation detection).
const STARVATION: u32 = 16;

struct Crq {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    next: AtomicPtr<Crq>,
    ring: Box<[AtomicPair]>, // (val, idx) per cell
    mask: u64,
}

impl Crq {
    fn boxed(order: u32) -> *mut Crq {
        let size = 1u64 << order;
        let ring = (0..size).map(|i| AtomicPair::new(EMPTY, i)).collect();
        Box::into_raw(Box::new(Crq {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            next: AtomicPtr::new(ptr::null_mut()),
            ring,
            mask: size - 1,
        }))
    }

    /// Enqueue into this ring; `Err` means the ring is (now) closed.
    fn enqueue(&self, v: u64) -> Result<(), ()> {
        debug_assert_ne!(v, EMPTY);
        let mut tries = 0u32;
        loop {
            let t_raw = self.tail.fetch_add(1, SeqCst);
            if t_raw & CLOSED != 0 {
                return Err(());
            }
            let t = t_raw;
            let cell = &self.ring[(t & self.mask) as usize];
            let (val, idx_word) = cell.load2();
            let ix = idx_word & !UNSAFE;
            let uns = idx_word & UNSAFE != 0;
            if val == EMPTY
                && ix <= t
                && (!uns || self.head.load(SeqCst) <= t)
                && cell.compare_exchange2((EMPTY, idx_word), (v, t))
            {
                return Ok(());
            }
            tries += 1;
            // Ring full or starving: close it (tantrum) so the outer list
            // appends a fresh ring.
            let h = self.head.load(SeqCst);
            if t.wrapping_sub(h) >= self.ring.len() as u64 || tries >= STARVATION {
                self.tail.fetch_or(CLOSED, SeqCst);
                return Err(());
            }
        }
    }

    /// Dequeue from this ring; `None` when it is currently empty.
    fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.fetch_add(1, SeqCst);
            let cell = &self.ring[(h & self.mask) as usize];
            loop {
                let (val, idx_word) = cell.load2();
                let ix = idx_word & !UNSAFE;
                let uns = idx_word & UNSAFE != 0;
                if ix > h {
                    break; // cell already past our round
                }
                if val != EMPTY {
                    if ix == h {
                        // Our element: take it and advance the cell a round.
                        if cell.compare_exchange2((val, idx_word), (EMPTY, h + self.ring.len() as u64))
                        {
                            return Some(val);
                        }
                    } else {
                        // Value from an older round: mark unsafe so its
                        // (late) dequeuer cannot be fooled.
                        if cell.compare_exchange2((val, idx_word), (val, ix | UNSAFE)) {
                            break;
                        }
                    }
                } else {
                    // Empty cell: advance idx so the late enqueuer of round
                    // `h` skips it.
                    let new_idx = (h + self.ring.len() as u64) | (idx_word & UNSAFE);
                    if cell.compare_exchange2((EMPTY, idx_word), (EMPTY, new_idx)) {
                        break;
                    }
                }
                let _ = uns;
            }
            // Possibly empty.
            let t = self.tail.load(SeqCst) & !CLOSED;
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// Drag a lagging tail up to head after observing emptiness.
    fn fix_state(&self) {
        loop {
            let h = self.head.load(SeqCst);
            let t_raw = self.tail.load(SeqCst);
            if t_raw & CLOSED != 0 || (t_raw & !CLOSED) >= h {
                return;
            }
            if self
                .tail
                .compare_exchange(t_raw, h, SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
}

/// LCRQ: lock-free unbounded MPMC queue of `u64` values (`< u64::MAX`).
pub struct Lcrq {
    head: AtomicPtr<Crq>,
    tail: AtomicPtr<Crq>,
    domain: Domain,
    ring_order: u32,
}

// SAFETY: shared state is atomics; CRQ nodes reclaimed through HP.
unsafe impl Send for Lcrq {}
unsafe impl Sync for Lcrq {}

impl Lcrq {
    /// Creates a queue whose rings hold `2^ring_order` cells (the paper
    /// notes ≥ 2^12 is needed for performance; that is the default used by
    /// [`Lcrq::new`]).
    pub fn with_ring_order(max_threads: usize, ring_order: u32) -> Self {
        let first = Crq::boxed(ring_order);
        Lcrq {
            head: AtomicPtr::new(first),
            tail: AtomicPtr::new(first),
            domain: Domain::new(max_threads),
            ring_order,
        }
    }

    /// Creates a queue with the paper's default ring size (2^12).
    pub fn new(max_threads: usize) -> Self {
        Self::with_ring_order(max_threads, 12)
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<LcrqHandle<'_>> {
        Some(LcrqHandle {
            q: self,
            hp: self.domain.register()?,
        })
    }
}

impl Drop for Lcrq {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in drop.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to an [`Lcrq`].
pub struct LcrqHandle<'q> {
    q: &'q Lcrq,
    hp: HpHandle<'q>,
}

impl LcrqHandle<'_> {
    /// Lock-free enqueue.
    pub fn enqueue(&mut self, v: u64) {
        loop {
            let ltail = self.hp.protect(0, &self.q.tail);
            // SAFETY: ltail protected.
            let next = unsafe { (*ltail).next.load(SeqCst) };
            if !next.is_null() {
                let _ = self.q.tail.compare_exchange(ltail, next, SeqCst, SeqCst);
                continue;
            }
            // SAFETY: ltail protected.
            if unsafe { (*ltail).enqueue(v).is_ok() } {
                self.hp.clear_slot(0);
                return;
            }
            // Ring closed: append a fresh ring seeded with v.
            let fresh = Crq::boxed(self.q.ring_order);
            // SAFETY: we own `fresh` until it is linked.
            unsafe {
                (*fresh)
                    .enqueue(v)
                    .expect("fresh ring cannot be closed or full");
            }
            // SAFETY: ltail protected.
            if unsafe {
                (*ltail)
                    .next
                    .compare_exchange(ptr::null_mut(), fresh, SeqCst, SeqCst)
                    .is_ok()
            } {
                let _ = self.q.tail.compare_exchange(ltail, fresh, SeqCst, SeqCst);
                self.hp.clear_slot(0);
                return;
            }
            // Lost the append race: discard our ring and retry.
            // SAFETY: `fresh` was never published.
            unsafe { drop(Box::from_raw(fresh)) };
        }
    }

    /// Lock-free dequeue; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        loop {
            let lhead = self.hp.protect(0, &self.q.head);
            // SAFETY: lhead protected.
            if let Some(v) = unsafe { (*lhead).dequeue() } {
                self.hp.clear_slot(0);
                return Some(v);
            }
            // SAFETY: lhead protected.
            let next = unsafe { (*lhead).next.load(SeqCst) };
            if next.is_null() {
                self.hp.clear_slot(0);
                return None;
            }
            // A successor exists (this ring is closed). Drain once more to
            // close the race with in-flight enqueues, then advance head.
            // SAFETY: lhead protected.
            if let Some(v) = unsafe { (*lhead).dequeue() } {
                self.hp.clear_slot(0);
                return Some(v);
            }
            if self
                .q
                .head
                .compare_exchange(lhead, next, SeqCst, SeqCst)
                .is_ok()
            {
                // SAFETY: lhead unlinked; nobody can re-reach it.
                unsafe { self.hp.retire(lhead) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn fifo_single_thread() {
        let q = Lcrq::with_ring_order(1, 4);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..200 {
            h.enqueue(i);
        }
        for i in 0..200 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn overflows_into_new_rings() {
        // Ring of 8 cells, enqueue 100: must chain multiple CRQs while
        // preserving FIFO.
        let q = Lcrq::with_ring_order(1, 3);
        let mut h = q.register().unwrap();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i), "at element {i}");
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn interleaved_enq_deq_over_closed_rings() {
        let q = Lcrq::with_ring_order(1, 2);
        let mut h = q.register().unwrap();
        let mut next_out = 0;
        for i in 0..1000u64 {
            h.enqueue(i);
            if i % 3 == 0 {
                assert_eq!(h.dequeue(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = h.dequeue() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 1000);
    }

    #[test]
    fn mpmc_exact_delivery() {
        let q = Arc::new(Lcrq::with_ring_order(8, 6));
        let done = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..5000 {
                        h.enqueue(p << 32 | i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    let mut local = Vec::new();
                    loop {
                        match h.dequeue() {
                            Some(v) => local.push(v),
                            None if done.load(SeqCst) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().extend(local);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let got = sink.lock().unwrap();
        assert_eq!(got.len(), 15_000);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 15_000);
    }
}
