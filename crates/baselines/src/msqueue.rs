//! MSQueue — Michael & Scott's classic lock-free FIFO queue (1996/1998),
//! with hazard-pointer reclamation as in the paper's evaluation.
//!
//! "A well-known Michael & Scott's lock-free queue which is not very
//! performant." (§6) Every operation CASes the shared `Head`/`Tail`, which
//! is exactly why it scales poorly compared to the F&A-based designs.

use hazard::{Domain, HpHandle};
use std::ptr;
use std::sync::atomic::Ordering::SeqCst;
// `AtomicPtr` must match the type in hazard's `protect` signature, which
// switches to the shuttle-lite shim under `--cfg wcq_dst`.
#[cfg(not(wcq_dst))]
use std::sync::atomic::AtomicPtr;
#[cfg(wcq_dst)]
use shuttle_lite::atomic::AtomicPtr;

struct Node {
    val: u64,
    next: AtomicPtr<Node>,
}

impl Node {
    fn boxed(val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            val,
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// Michael & Scott lock-free queue of `u64` values.
///
/// Access goes through per-thread [`MsHandle`]s (they carry the hazard
/// pointers and the retire list).
pub struct MsQueue {
    head: AtomicPtr<Node>,
    tail: AtomicPtr<Node>,
    domain: Domain,
}

// SAFETY: all shared state is atomics; nodes are reclaimed through HP.
unsafe impl Send for MsQueue {}
unsafe impl Sync for MsQueue {}

impl MsQueue {
    /// Creates an empty queue admitting up to `max_threads` handles.
    pub fn new(max_threads: usize) -> Self {
        let sentinel = Node::boxed(0);
        MsQueue {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            domain: Domain::new(max_threads),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<MsHandle<'_>> {
        Some(MsHandle {
            q: self,
            hp: self.domain.register()?,
        })
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        // Free the remaining chain (sentinel included).
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in drop; nodes were Box-allocated.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to an [`MsQueue`].
pub struct MsHandle<'q> {
    q: &'q MsQueue,
    hp: HpHandle<'q>,
}

impl MsHandle<'_> {
    /// Lock-free enqueue.
    pub fn enqueue(&mut self, v: u64) {
        let node = Node::boxed(v);
        loop {
            let ltail = self.hp.protect(0, &self.q.tail);
            // SAFETY: ltail is protected and was reachable via `tail`.
            let next = unsafe { (*ltail).next.load(SeqCst) };
            if ltail != self.q.tail.load(SeqCst) {
                continue;
            }
            if next.is_null() {
                // SAFETY: ltail protected.
                if unsafe {
                    (*ltail)
                        .next
                        .compare_exchange(ptr::null_mut(), node, SeqCst, SeqCst)
                        .is_ok()
                } {
                    let _ = self.q.tail.compare_exchange(ltail, node, SeqCst, SeqCst);
                    self.hp.clear_slot(0);
                    return;
                }
            } else {
                // Help swing the lagging tail.
                let _ = self.q.tail.compare_exchange(ltail, next, SeqCst, SeqCst);
            }
        }
    }

    /// Lock-free dequeue; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        loop {
            let lhead = self.hp.protect(0, &self.q.head);
            let ltail = self.q.tail.load(SeqCst);
            // SAFETY: lhead protected.
            let next = self.hp.protect(1, unsafe { &(*lhead).next });
            if lhead != self.q.head.load(SeqCst) {
                continue;
            }
            if next.is_null() {
                self.hp.clear();
                return None; // empty
            }
            if lhead == ltail {
                // Tail is lagging: help, then retry.
                let _ = self.q.tail.compare_exchange(ltail, next, SeqCst, SeqCst);
                continue;
            }
            // SAFETY: next protected; the value is read while the node is
            // still guarded by our hazard pointer.
            let val = unsafe { (*next).val };
            if self
                .q
                .head
                .compare_exchange(lhead, next, SeqCst, SeqCst)
                .is_ok()
            {
                self.hp.clear();
                // SAFETY: lhead is now unlinked; nobody can re-reach it.
                unsafe { self.hp.retire(lhead) };
                return Some(val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn fifo_single_thread() {
        let q = MsQueue::new(1);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        let q = MsQueue::new(1);
        {
            let mut h = q.register().unwrap();
            for i in 0..50 {
                h.enqueue(i);
            }
        }
        drop(q); // must not leak / double-free (checked under sanitizers)
    }

    #[test]
    fn mpmc_exact_delivery() {
        let q = Arc::new(MsQueue::new(8));
        let done = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..4000 {
                        h.enqueue(p << 32 | i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    let mut local = Vec::new();
                    loop {
                        match h.dequeue() {
                            Some(v) => local.push(v),
                            None if done.load(SeqCst) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().extend(local);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let got = sink.lock().unwrap();
        assert_eq!(got.len(), 12_000);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 12_000);
    }
}
