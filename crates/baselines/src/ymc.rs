//! YMC — Yang & Mellor-Crummey's "wait-free queue as fast as fetch-and-add"
//! (PPoPP '16), in the reproduction scope documented in `DESIGN.md` §3.4.
//!
//! What is reproduced faithfully:
//! * the **fast path**: F&A-allocated tickets over an *infinite array* of
//!   cells realized as a linked list of fixed-size segments;
//! * the **segment memory model and its reclamation flaw**: segments are
//!   only freed below the minimum position published by *all* registered
//!   handles, so a single stalled thread makes memory grow without bound —
//!   the behaviour the wCQ paper highlights (and Fig. 10a measures);
//! * empty detection via `Tail`/`Head` comparison plus `fix_state`.
//!
//! What is simplified: the helping slow path. Instead of YMC's
//! enqueue/dequeue request descriptors and peer chasing, a dequeuer waits a
//! bounded number of spins for the matching enqueuer before invalidating the
//! cell (standing in for YMC's `help_enq`), after which both sides retry
//! with fresh tickets. This keeps the measured fast path and memory
//! behaviour while avoiding the (independently known-flawed, see
//! Ramalhete & Correia) wait-free bookkeeping.

use crossbeam_utils::CachePadded;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering::SeqCst};

/// log2(cells per segment). YMC uses 2^10 cells per segment.
const SEG_ORDER: u32 = 10;
const SEG_SIZE: usize = 1 << SEG_ORDER;

/// Cell states. Values are stored with an offset so that user payloads can
/// use the full range below `u64::MAX - 2`.
const CELL_EMPTY: u64 = 0;
const CELL_TOP: u64 = 1; // dequeuer invalidated the cell ("⊤" in Fig. 1)
const VAL_OFFSET: u64 = 2;

/// How long a dequeuer waits for its matching enqueuer before invalidating
/// the cell (stand-in for YMC's helping; see module docs).
const DEQ_PATIENCE: u32 = 512;

struct Segment {
    id: u64,
    cells: Box<[AtomicU64]>,
    next: AtomicPtr<Segment>,
}

impl Segment {
    fn boxed(id: u64) -> *mut Segment {
        Box::into_raw(Box::new(Segment {
            id,
            cells: (0..SEG_SIZE).map(|_| AtomicU64::new(CELL_EMPTY)).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

#[repr(align(128))]
struct HandleSlot {
    active: AtomicBool,
    /// Low-water mark: the minimum segment id this handle may still touch.
    /// `u64::MAX` when idle-from-birth. Never decreases.
    hzd: AtomicU64,
}

/// YMC-style unbounded MPMC queue of `u64` values (`< u64::MAX - 2`).
pub struct YmcQueue {
    tail: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
    /// Oldest retained segment.
    seg_head: AtomicPtr<Segment>,
    slots: Box<[HandleSlot]>,
    /// Serializes reclamation sweeps.
    reclaim_lock: AtomicBool,
    /// Live segment counter (memory diagnostics; Fig. 10a uses the
    /// allocator-level census, this is the structural view).
    live_segments: AtomicU64,
}

// SAFETY: cells and counters are atomics; segment reclamation is guarded by
// the published per-handle low-water marks (see `reclaim`).
unsafe impl Send for YmcQueue {}
unsafe impl Sync for YmcQueue {}

impl YmcQueue {
    /// Creates an empty queue admitting `max_threads` handles.
    pub fn new(max_threads: usize) -> Self {
        let first = Segment::boxed(0);
        YmcQueue {
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            seg_head: AtomicPtr::new(first),
            slots: (0..max_threads)
                .map(|_| HandleSlot {
                    active: AtomicBool::new(false),
                    hzd: AtomicU64::new(u64::MAX),
                })
                .collect(),
            reclaim_lock: AtomicBool::new(false),
            live_segments: AtomicU64::new(1),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> Option<YmcHandle<'_>> {
        for (i, s) in self.slots.iter().enumerate() {
            if s.active
                .compare_exchange(false, true, SeqCst, SeqCst)
                .is_ok()
            {
                let head_seg = self.seg_head.load(SeqCst);
                s.hzd.store(0, SeqCst);
                return Some(YmcHandle {
                    q: self,
                    slot: i,
                    enq_seg: head_seg,
                    deq_seg: head_seg,
                    ops: 0,
                });
            }
        }
        None
    }

    /// Number of segments currently allocated (diagnostics).
    pub fn live_segments(&self) -> u64 {
        self.live_segments.load(SeqCst)
    }

    /// Forces a reclamation sweep (diagnostics/tests; normally triggered
    /// every 128 operations per handle).
    pub fn reclaim_now(&self) {
        self.reclaim();
    }

    /// Frees segments no handle can reach anymore. This is YMC's flawed
    /// reclamation: the sweep is limited by the *minimum* published
    /// low-water mark, so one stalled handle pins everything after it.
    fn reclaim(&self) {
        if self
            .reclaim_lock
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_err()
        {
            return;
        }
        let min_seg = self
            .slots
            .iter()
            .filter(|s| s.active.load(SeqCst))
            .map(|s| s.hzd.load(SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        // Also bounded by the global counters (positions not yet issued).
        let floor = (self.head.load(SeqCst).min(self.tail.load(SeqCst))) >> SEG_ORDER;
        let limit = min_seg.min(floor);
        let mut p = self.seg_head.load(SeqCst);
        // SAFETY: only the reclaim-lock holder advances seg_head, and no
        // handle navigates below its published hzd (≥ limit).
        unsafe {
            while (*p).id < limit {
                let next = (*p).next.load(SeqCst);
                if next.is_null() {
                    break;
                }
                self.seg_head.store(next, SeqCst);
                drop(Box::from_raw(p));
                self.live_segments.fetch_sub(1, SeqCst);
                p = next;
            }
        }
        self.reclaim_lock.store(false, SeqCst);
    }
}

impl Drop for YmcQueue {
    fn drop(&mut self) {
        let mut p = *self.seg_head.get_mut();
        while !p.is_null() {
            // SAFETY: exclusive access in drop.
            let boxed = unsafe { Box::from_raw(p) };
            p = boxed.next.load(SeqCst);
        }
    }
}

/// Per-thread handle to a [`YmcQueue`].
pub struct YmcHandle<'q> {
    q: &'q YmcQueue,
    slot: usize,
    enq_seg: *mut Segment,
    deq_seg: *mut Segment,
    ops: u32,
}

// SAFETY: cached segment pointers are guarded by this handle's published
// low-water mark.
unsafe impl Send for YmcHandle<'_> {}

impl YmcHandle<'_> {
    /// Publishes this handle's low-water mark and periodically reclaims.
    #[inline]
    fn op_prologue(&mut self) {
        // SAFETY: cached segments are protected by the previous hzd value.
        let low = unsafe { (*self.enq_seg).id.min((*self.deq_seg).id) };
        self.q.slots[self.slot].hzd.store(low, SeqCst);
        self.ops = self.ops.wrapping_add(1);
        if self.ops.is_multiple_of(128) {
            self.q.reclaim();
        }
    }

    /// Walks/extends the segment list to the segment holding `ticket`,
    /// starting from this handle's cache (never backwards — tickets are
    /// monotonic per counter). `live` is bumped for every segment this call
    /// actually appends.
    #[inline]
    fn find_cell(cache: &mut *mut Segment, ticket: u64, live: &AtomicU64) -> &'static AtomicU64 {
        let seg_id = ticket >> SEG_ORDER;
        let mut s = *cache;
        // SAFETY: `s` is protected by this handle's hzd (id ≥ hzd) and
        // segments ahead of it are never freed before it.
        unsafe {
            debug_assert!((*s).id <= seg_id, "navigation went backwards");
            while (*s).id < seg_id {
                let mut next = (*s).next.load(SeqCst);
                if next.is_null() {
                    let fresh = Segment::boxed((*s).id + 1);
                    match (*s)
                        .next
                        .compare_exchange(ptr::null_mut(), fresh, SeqCst, SeqCst)
                    {
                        Ok(_) => {
                            live.fetch_add(1, SeqCst);
                            next = fresh;
                        }
                        Err(cur) => {
                            drop(Box::from_raw(fresh));
                            next = cur;
                        }
                    }
                }
                s = next;
            }
            *cache = s;
            // Lifetime laundering: the cell lives as long as the segment,
            // which outlives this op thanks to the hzd protocol.
            &*(&(*s).cells[(ticket & (SEG_SIZE as u64 - 1)) as usize] as *const AtomicU64)
        }
    }

    /// Enqueue (F&A fast path of YMC).
    pub fn enqueue(&mut self, v: u64) {
        debug_assert!(v < u64::MAX - VAL_OFFSET);
        self.op_prologue();
        loop {
            let t = self.q.tail.fetch_add(1, SeqCst);
            let cell = Self::find_cell(&mut self.enq_seg, t, &self.q.live_segments);
            if cell
                .compare_exchange(CELL_EMPTY, v + VAL_OFFSET, SeqCst, SeqCst)
                .is_ok()
            {
                return;
            }
            // Cell invalidated by a dequeuer: burn the ticket and retry.
        }
    }

    /// Dequeue; `None` when empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        self.op_prologue();
        loop {
            let h = self.q.head.fetch_add(1, SeqCst);
            let cell = Self::find_cell(&mut self.deq_seg, h, &self.q.live_segments);
            // Bounded wait for the matching enqueuer (helping stand-in).
            let mut spins = 0u32;
            while cell.load(SeqCst) == CELL_EMPTY && spins < DEQ_PATIENCE {
                spins += 1;
                std::hint::spin_loop();
            }
            let v = cell.swap(CELL_TOP, SeqCst);
            if v > CELL_TOP {
                return Some(v - VAL_OFFSET);
            }
            // We invalidated an empty cell. Empty queue?
            let t = self.q.tail.load(SeqCst);
            if t <= h + 1 {
                self.fix_state(h + 1);
                return None;
            }
        }
    }

    /// `fix_state`: drag a lagging tail up to head after an empty dequeue.
    fn fix_state(&self, h: u64) {
        loop {
            let t = self.q.tail.load(SeqCst);
            if t >= h {
                return;
            }
            if self.q.tail.compare_exchange(t, h, SeqCst, SeqCst).is_ok() {
                return;
            }
        }
    }
}

impl Drop for YmcHandle<'_> {
    fn drop(&mut self) {
        let s = &self.q.slots[self.slot];
        s.hzd.store(u64::MAX, SeqCst);
        s.active.store(false, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool as Flag;
    use std::sync::{Arc, Mutex};

    #[test]
    fn fifo_single_thread() {
        let q = YmcQueue::new(1);
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q = YmcQueue::new(1);
        let mut h = q.register().unwrap();
        let count = (SEG_SIZE * 3 + 17) as u64;
        for i in 0..count {
            h.enqueue(i);
        }
        assert!(q.live_segments() >= 3, "must have allocated segments");
        for i in 0..count {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn reclamation_frees_consumed_segments() {
        let q = YmcQueue::new(1);
        let mut h = q.register().unwrap();
        for round in 0..20u64 {
            for i in 0..SEG_SIZE as u64 {
                h.enqueue(round * SEG_SIZE as u64 + i);
            }
            for _ in 0..SEG_SIZE {
                assert!(h.dequeue().is_some());
            }
        }
        q.reclaim();
        // All but a handful of trailing segments must have been freed.
        assert!(
            q.live_segments() <= 4,
            "segments leaked: {}",
            q.live_segments()
        );
    }

    #[test]
    fn stalled_handle_pins_memory_the_ymc_flaw() {
        let q = YmcQueue::new(2);
        let stalled = q.register().unwrap(); // publishes hzd = 0, then stalls
        let mut h = q.register().unwrap();
        for i in 0..(SEG_SIZE as u64 * 8) {
            h.enqueue(i);
            let _ = h.dequeue();
        }
        q.reclaim();
        assert!(
            q.live_segments() >= 8,
            "a stalled handle must pin segments (the documented YMC flaw); live = {}",
            q.live_segments()
        );
        drop(stalled);
        q.reclaim();
        assert!(q.live_segments() <= 4, "after the stalled handle departs, memory is reclaimed");
    }

    #[test]
    fn mpmc_exact_delivery() {
        let q = Arc::new(YmcQueue::new(8));
        let done = Arc::new(Flag::new(false));
        let sink = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    for i in 0..5000 {
                        h.enqueue(p << 32 | i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let mut h = q.register().unwrap();
                    let mut local = Vec::new();
                    loop {
                        match h.dequeue() {
                            Some(v) => local.push(v),
                            None if done.load(SeqCst) => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    sink.lock().unwrap().extend(local);
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, SeqCst);
        for c in consumers {
            c.join().unwrap();
        }
        let got = sink.lock().unwrap();
        assert_eq!(got.len(), 15_000);
        let set: std::collections::HashSet<_> = got.iter().collect();
        assert_eq!(set.len(), 15_000);
    }
}
