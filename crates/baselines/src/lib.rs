//! # baselines — the comparison queues from the wCQ evaluation (§6)
//!
//! Every algorithm the paper benchmarks against, implemented from scratch:
//!
//! | Module | Algorithm | Progress | Notes |
//! |--------|-----------|----------|-------|
//! | [`faa`] | F&A counters only | wait-free | not a real queue: the paper's throughput "upper bound" |
//! | [`msqueue`] | Michael & Scott 1996 | lock-free | hazard-pointer reclamation |
//! | [`ccqueue`] | Fatourou & Kallimanis CC-Synch 2012 | blocking (combining) | |
//! | [`lcrq`] | Morrison & Afek 2013 | lock-free | CRQ rings + MS outer list, CAS2 per cell |
//! | [`ymc`] | Yang & Mellor-Crummey 2016 | see DESIGN.md §3.4 | segment list + the paper-noted reclamation flaw |
//! | [`crturn`] | Ramalhete & Correia 2016/17 | wait-free enqueue, lock-free dequeue (see DESIGN.md §3.4) | hazard pointers |
//!
//! SCQ — also a baseline — lives in the `wcq` crate (`wcq::ScqQueue`), since
//! it is simultaneously the substrate wCQ builds on.
//!
//! All queues here store `u64` values (the benchmarks enqueue pointer-sized
//! payloads, as in the paper's test framework).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ccqueue;
pub mod crturn;
pub mod faa;
pub mod lcrq;
pub mod msqueue;
pub mod ymc;

pub use ccqueue::CcQueue;
pub use crturn::CrTurnQueue;
pub use faa::FaaQueue;
pub use lcrq::Lcrq;
pub use msqueue::MsQueue;
pub use ymc::YmcQueue;
