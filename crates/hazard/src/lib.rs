//! # hazard — hazard-pointer safe memory reclamation
//!
//! A small, self-contained hazard-pointer (HP) implementation in the style
//! of Michael (2004), used by the linked-list baseline queues of the wCQ
//! evaluation (MSQueue, LCRQ, CRTurn) and by the unbounded list-of-rings
//! queues. The paper's evaluation uses "hazard pointers elsewhere" for
//! exactly these queues (§6).
//!
//! Design:
//! * A [`Domain`] owns `max_threads × HP_PER_THREAD` hazard slots.
//! * Each participating thread acquires a [`HpHandle`]; protecting a pointer
//!   publishes it in one of the thread's slots, retiring pushes it on a
//!   thread-local list that is scanned (and freed) once it grows past a
//!   threshold.
//! * Dropping a handle hands any still-protected retirees to the domain's
//!   orphan list; they are freed by later scans or when the domain drops.
//!
//! All pointer reclamation is `unsafe` at the retire site (the caller
//! asserts the pointer is unlinked); everything else is safe.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

use std::collections::HashSet;
use std::sync::atomic::Ordering::{Relaxed, SeqCst};

// Same seam as `wcq::sim`: production builds use `std`; `--cfg wcq_dst`
// routes every atomic and the orphan-list mutex through the shuttle-lite
// scheduler shims so the validate-after-publish protocol is explorable
// (and so a simulated thread never blocks on an OS mutex the scheduler
// cannot see). `AtomicPtr` appears in the public `protect` signature, so
// callers compiled under the same cfg see the same type.
#[cfg(not(wcq_dst))]
use std::sync::{
    atomic::{AtomicBool, AtomicPtr, AtomicUsize},
    Mutex,
};
#[cfg(wcq_dst)]
use shuttle_lite::{
    atomic::{AtomicBool, AtomicPtr, AtomicUsize},
    sync::Mutex,
};

/// Hazard slots per thread. MSQueue needs 2, LCRQ 2, CRTurn 3; 4 gives
/// headroom for composed structures.
pub const HP_PER_THREAD: usize = 4;

#[repr(align(128))]
struct Slot {
    active: AtomicBool,
    hp: [AtomicUsize; HP_PER_THREAD],
}

struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a retired pointer is unlinked (caller contract) and owned by the
// retire list; moving it across threads is sound. Shared references are
// sound too (`Sync`): `&Retired` only permits reading the pointer *value*
// — all dereferencing and freeing goes through owning (`&mut`/by-value)
// paths. Without `Sync`, every structure embedding an `HpHandle` (the
// owned unbounded handles, the channel endpoints) would be `!Sync` for no
// reason.
unsafe impl Send for Retired {}
// SAFETY: see the shared argument above — `&Retired` exposes no way
// to dereference or free.
unsafe impl Sync for Retired {}

/// A reclamation domain: a fixed set of hazard slots plus an orphan list.
pub struct Domain {
    slots: Box<[Slot]>,
    orphans: Mutex<Vec<Retired>>,
    /// Free-threshold: scan when a thread's retire list exceeds this.
    scan_threshold: usize,
}

impl Domain {
    /// Creates a domain for up to `max_threads` concurrent handles, with
    /// the default scan threshold (`2 × slots`, floored at 64 — tuned for
    /// small per-node allocations like list links).
    pub fn new(max_threads: usize) -> Self {
        Self::with_scan_threshold(max_threads, (2 * max_threads * HP_PER_THREAD).max(64))
    }

    /// Creates a domain with an explicit scan threshold: each thread's
    /// retire list is scanned (and unprotected retirees freed) once it
    /// exceeds `scan_threshold` entries. Structures whose retirees are
    /// large (e.g. whole rings) want a low threshold — the un-reclaimed
    /// backlog is bounded by `threads × scan_threshold` retirees.
    pub fn with_scan_threshold(max_threads: usize, scan_threshold: usize) -> Self {
        assert!(max_threads >= 1);
        assert!(scan_threshold >= 1);
        let slots = (0..max_threads)
            .map(|_| Slot {
                active: AtomicBool::new(false),
                hp: Default::default(),
            })
            .collect::<Box<[Slot]>>();
        Domain {
            scan_threshold,
            slots,
            orphans: Mutex::new(Vec::new()),
        }
    }

    /// Acquires a per-thread handle, or `None` if all slots are taken.
    ///
    /// Occupied slots are skipped with a plain load and the claiming CAS
    /// uses a `Relaxed` failure ordering, so registration churn (handles
    /// acquired and dropped per work item) does not hammer SeqCst
    /// read-modify-writes on every occupied slot.
    pub fn register(&self) -> Option<HpHandle<'_>> {
        for (idx, s) in self.slots.iter().enumerate() {
            if s.active.load(Relaxed) {
                continue; // occupied: don't even attempt the CAS
            }
            if s.active
                .compare_exchange(false, true, SeqCst, Relaxed)
                .is_ok()
            {
                return Some(HpHandle {
                    domain: self,
                    idx,
                    retired: Vec::new(),
                });
            }
        }
        None
    }

    /// Collects every currently published hazard pointer.
    fn collect_hazards(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        for s in self.slots.iter() {
            for hp in &s.hp {
                let p = hp.load(SeqCst);
                if p != 0 {
                    set.insert(p);
                }
            }
        }
        set
    }

    fn scan_list(&self, list: &mut Vec<Retired>) {
        // Also adopt orphans so nothing is stranded by departed threads.
        if let Ok(mut orphans) = self.orphans.try_lock() {
            list.append(&mut *orphans);
        }
        let hazards = self.collect_hazards();
        let mut keep = Vec::with_capacity(list.len());
        for r in list.drain(..) {
            if hazards.contains(&(r.ptr as usize)) {
                keep.push(r);
            } else {
                // SAFETY: unlinked (retire contract) and unprotected now.
                unsafe { (r.drop_fn)(r.ptr) };
            }
        }
        *list = keep;
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // No handles can be alive (they borrow the domain), so every orphan
        // is reclaimable.
        let orphans = std::mem::take(&mut *self.orphans.lock().unwrap());
        for r in orphans {
            // SAFETY: no readers remain.
            unsafe { (r.drop_fn)(r.ptr) };
        }
    }
}

/// Per-thread hazard-pointer handle.
pub struct HpHandle<'d> {
    domain: &'d Domain,
    idx: usize,
    retired: Vec<Retired>,
}

impl<'d> HpHandle<'d> {
    /// Protects the pointer currently stored in `src` under hazard slot
    /// `slot`, re-validating until the published hazard matches the source
    /// (the standard protect loop). Returns the protected raw pointer.
    #[inline]
    pub fn protect<T>(&self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        let cell = &self.domain.slots[self.idx].hp[slot];
        let mut p = src.load(SeqCst);
        loop {
            cell.store(p as usize, SeqCst);
            let q = src.load(SeqCst);
            if q == p {
                return p;
            }
            p = q;
        }
    }

    /// Publishes `ptr` in hazard slot `slot` without validation. Callers
    /// must re-validate the source themselves afterwards.
    #[inline]
    pub fn set<T>(&self, slot: usize, ptr: *mut T) {
        self.domain.slots[self.idx].hp[slot].store(ptr as usize, SeqCst);
    }

    /// Clears one hazard slot.
    #[inline]
    pub fn clear_slot(&self, slot: usize) {
        self.domain.slots[self.idx].hp[slot].store(0, SeqCst);
    }

    /// Clears all of this thread's hazard slots.
    #[inline]
    pub fn clear(&self) {
        for hp in &self.domain.slots[self.idx].hp {
            hp.store(0, SeqCst);
        }
    }

    /// Retires `ptr` for deferred reclamation.
    ///
    /// # Safety
    /// `ptr` must have been allocated via `Box<T>`, be fully unlinked from
    /// the shared structure (no new references can be created), and must not
    /// be retired twice.
    pub unsafe fn retire<T>(&mut self, ptr: *mut T) {
        // SAFETY (to call): `p` must be the `Box<T>` allocation recorded
        // in the paired `Retired`. Only the scan paths invoke it, exactly
        // once, after proving no hazard slot still covers the pointer.
        unsafe fn drop_box<T>(p: *mut u8) {
            // SAFETY: `p` originated from Box<T> per retire contract.
            drop(unsafe { Box::from_raw(p as *mut T) });
        }
        self.retired.push(Retired {
            ptr: ptr as *mut u8,
            drop_fn: drop_box::<T>,
        });
        if self.retired.len() >= self.domain.scan_threshold {
            self.domain.scan_list(&mut self.retired);
        }
    }

    /// The slot index this handle occupies, in `0..max_threads`.
    ///
    /// Indices are handed out exclusively (one live handle per index), so
    /// composed structures can reuse them as their per-thread id — the
    /// unbounded list-of-rings drives its inner rings' raw thread-id API
    /// with exactly this value, making one registration cover both the
    /// hazard slots and the ring thread slots.
    #[inline]
    pub fn idx(&self) -> usize {
        self.idx
    }

    /// Forces a scan of this thread's retire list (tests/teardown).
    pub fn flush(&mut self) {
        self.domain.scan_list(&mut self.retired);
    }

    /// Number of not-yet-reclaimed retirees held by this handle (tests).
    pub fn pending(&self) -> usize {
        self.retired.len()
    }
}

impl Drop for HpHandle<'_> {
    fn drop(&mut self) {
        self.clear();
        self.domain.scan_list(&mut self.retired);
        if !self.retired.is_empty() {
            self.domain
                .orphans
                .lock()
                .unwrap()
                .append(&mut self.retired);
        }
        self.domain.slots[self.idx].active.store(false, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    static LIVE: Counter = Counter::new(0);

    struct Tracked(#[allow(dead_code)] u64);
    impl Tracked {
        fn boxed(v: u64) -> *mut Tracked {
            LIVE.fetch_add(1, SeqCst);
            Box::into_raw(Box::new(Tracked(v)))
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, SeqCst);
        }
    }

    #[test]
    fn register_exhaustion() {
        let d = Domain::new(2);
        let h1 = d.register().unwrap();
        let _h2 = d.register().unwrap();
        assert!(d.register().is_none());
        drop(h1);
        assert!(d.register().is_some());
    }

    #[test]
    fn protect_tracks_moving_source() {
        let d = Domain::new(1);
        let h = d.register().unwrap();
        let a = Box::into_raw(Box::new(5u64));
        let b = Box::into_raw(Box::new(6u64));
        let src = AtomicPtr::new(a);
        assert_eq!(h.protect(0, &src), a);
        src.store(b, SeqCst);
        assert_eq!(h.protect(0, &src), b);
        // SAFETY: the test owns both boxes; no handle retires or frees
        // them, so each `from_raw` is the unique reclamation.
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn protected_pointer_survives_scan() {
        let d = Domain::new(2);
        let mut h1 = d.register().unwrap();
        let h2 = d.register().unwrap();
        let p = Tracked::boxed(1);
        let src = AtomicPtr::new(p);
        let got = h2.protect(0, &src);
        assert_eq!(got, p);
        // SAFETY: we "unlink" p (conceptually) and retire it.
        unsafe { h1.retire(p) };
        h1.flush();
        assert_eq!(LIVE.load(SeqCst), 1, "protected node must not be freed");
        h2.clear();
        h1.flush();
        assert_eq!(LIVE.load(SeqCst), 0, "unprotected node is reclaimed");
    }

    #[test]
    fn orphans_reclaimed_on_domain_drop() {
        {
            let d = Domain::new(2);
            let mut h1 = d.register().unwrap();
            let h2 = d.register().unwrap();
            let p = Tracked::boxed(2);
            let src = AtomicPtr::new(p);
            h2.protect(1, &src);
            // SAFETY: `p` is boxed, unlinked from the test's view here,
            // and retired exactly once.
            unsafe { h1.retire(p) };
            drop(h1); // p still protected by h2 → goes to orphans
            assert_eq!(LIVE.load(SeqCst), 1);
            drop(h2);
        } // domain drop reclaims orphans
        assert_eq!(LIVE.load(SeqCst), 0);
    }

    #[test]
    fn threshold_scan_reclaims_bulk() {
        let d = Domain::new(1);
        let mut h = d.register().unwrap();
        for i in 0..200 {
            let p = Tracked::boxed(i);
            // SAFETY: fresh box, never linked anywhere, retired once.
            unsafe { h.retire(p) };
        }
        h.flush();
        assert_eq!(LIVE.load(SeqCst), 0);
        assert_eq!(h.pending(), 0);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        let d = Arc::new(Domain::new(4));
        let src = Arc::new(AtomicPtr::new(Tracked::boxed(0)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let d = Arc::clone(&d);
            let src = Arc::clone(&src);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let h = d.register().unwrap();
                while !stop.load(SeqCst) {
                    let p = h.protect(0, &src);
                    // SAFETY: `p` is published in our hazard slot and was
                    // validated against `src`, so the writer cannot free
                    // it until we clear the slot. A racing reclamation is
                    // UB, detectable under ASan/Miri — the point of the
                    // stress.
                    let _v = unsafe { &(*p).0 };
                    h.clear_slot(0);
                }
            }));
        }
        {
            let d = Arc::clone(&d);
            let src = Arc::clone(&src);
            let writer = std::thread::spawn(move || {
                let mut h = d.register().unwrap();
                for i in 1..2000 {
                    let fresh = Tracked::boxed(i);
                    let old = src.swap(fresh, SeqCst);
                    // SAFETY: the swap unlinked `old`; the single writer
                    // retires each displaced box exactly once.
                    unsafe { h.retire(old) };
                }
                h.flush();
            });
            writer.join().unwrap();
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        // Last node still linked.
        assert_eq!(LIVE.load(SeqCst), 1);
        // SAFETY: all threads joined; the final node is owned solely by
        // `src`, and this is its unique reclamation.
        unsafe { drop(Box::from_raw(src.load(SeqCst))) };
        assert_eq!(LIVE.load(SeqCst), 0);
    }
}
